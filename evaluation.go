package churntomo

// The ground-truth accuracy surface. A synthetic world knows exactly who
// censors — the paper's authors did not — so every run can be scored:
// Result.Truth() extracts the ground truth the generators recorded,
// Evaluate grades the tomography's verdict against it, and
// Result.Evaluation carries the grade for the common case. The scoring
// arithmetic itself lives in internal/evalmetrics; this file only maps
// the public Result onto it.

import (
	"sort"

	"churntomo/internal/evalmetrics"
	"churntomo/internal/sat"
	"churntomo/internal/topology"
)

// GroundTruth is what the scenario generators know about censorship in
// one synthesized world: the full censor registry, the subset that
// actually fired during the measurement period, and every AS that sat on
// a path carrying a censorship event.
type GroundTruth struct {
	// Censors is the complete ground-truth censor set.
	Censors []ASN
	// Exercised lists the censors that produced at least one anomaly —
	// the fair recall target: a censor no measurement crossed leaves no
	// evidence to localize.
	Exercised []ASN
	// OnCensoredPath lists every AS (censor or bystander) on some
	// measured path that carried a censorship event. A false positive
	// inside this set is "leakage": the method accused a bystander of
	// the blocking it witnessed.
	OnCensoredPath []ASN
}

// CensorConvergence is one AS's identification timeline in streaming
// mode, in measurement days rather than window ordinals.
type CensorConvergence struct {
	ASN        ASN
	TrueCensor bool
	// FirstDay is the end day of the first window that identified the
	// AS — the earliest the method could have named it.
	FirstDay int
	// StableDay is the end day of the window from which the AS stays
	// identified through the end of the timeline, or -1 if the final
	// window no longer names it.
	StableDay int
	// Windows counts the windows that identified the AS.
	Windows int
}

// Evaluation grades one run's verdict against ground truth. All rates
// are in [0, 1]; degenerate cases are pinned, never NaN (see
// internal/evalmetrics for the exact rules).
type Evaluation struct {
	// TrueCensors/ExercisedCensors/IdentifiedASes size the three sets.
	TrueCensors, ExercisedCensors, IdentifiedASes int

	// TP/FP/Missed decompose the verdict against the full censor set.
	TP, FP, Missed int

	Precision float64
	Recall    float64
	F1        float64

	// ExercisedRecall is recall over censors that actually fired
	// (1 when none did).
	ExercisedRecall float64

	// LeakageFPs counts false positives that lie on some censored path;
	// LeakageRate is their fraction of all false positives (0 when
	// there are none). High leakage means the method's mistakes are
	// path-intersection mistakes, not noise.
	LeakageFPs  int
	LeakageRate float64

	// FalsePositives and MissedCensors name the errors, sorted.
	FalsePositives []ASN
	MissedCensors  []ASN

	// CandidateReduction is the mean fraction of candidate ASes proven
	// non-censors across the ambiguous (multi-solution) CNFs — Figure
	// 2's quantity, over the MultipleCNFs instances it averages.
	CandidateReduction float64
	MultipleCNFs       int

	// Convergence maps the streaming identification timeline onto
	// measurement days; nil outside streaming mode.
	Convergence []CensorConvergence
}

// Truth extracts the ground truth a single-cell run's generators
// recorded: the censor registry, the censors that fired, and the ASes on
// censored paths. It returns nil when the result carries no ground
// truth — matrix mode (each cell has its own world) or a replayed
// dataset whose source stripped the registry.
func (r *Result) Truth() *GroundTruth {
	if r == nil || r.Mode == ModeMatrix || len(r.Pipelines) != 1 {
		return nil
	}
	p := r.Pipelines[0]
	if p == nil || p.Censors == nil {
		return nil
	}
	gt := &GroundTruth{Censors: p.Censors.ASNs()}
	exercised := map[topology.ASN]bool{}
	onPath := map[topology.ASN]bool{}
	if p.Dataset != nil {
		for i := range p.Dataset.Records {
			rec := &p.Dataset.Records[i]
			if len(rec.TrueActs) == 0 {
				continue
			}
			for _, act := range rec.TrueActs {
				exercised[act.ASN] = true
			}
			for _, as := range rec.TruePath {
				onPath[as] = true
			}
		}
	}
	for as := range exercised {
		gt.Exercised = append(gt.Exercised, as)
	}
	for as := range onPath {
		gt.OnCensoredPath = append(gt.OnCensoredPath, as)
	}
	// Map iteration is unordered; Evaluate sorts internally, but keep
	// the public struct deterministic too.
	sortASNs(gt.Exercised)
	sortASNs(gt.OnCensoredPath)
	return gt
}

// Evaluate grades a result's identified censor set against ground
// truth. It is pure set arithmetic — safe on adversarial inputs, never
// panics, all rates in [0, 1] — and returns nil only when either
// argument is nil. Convergence and CandidateReduction are filled from
// the result when the mode provides them.
func Evaluate(r *Result, truth *GroundTruth) *Evaluation {
	if r == nil || truth == nil {
		return nil
	}
	identified := make([]ASN, 0, len(r.Censors))
	for _, c := range r.Censors {
		identified = append(identified, c.ASN)
	}
	m := evalmetrics.Score(evalmetrics.Input{
		Identified:     identified,
		True:           truth.Censors,
		Exercised:      truth.Exercised,
		OnCensoredPath: truth.OnCensoredPath,
	})
	ev := &Evaluation{
		TrueCensors:      m.TP + m.Missed,
		ExercisedCensors: countInTruth(truth.Exercised, truth.Censors),
		IdentifiedASes:   m.TP + m.FP,
		TP:               m.TP, FP: m.FP, Missed: m.Missed,
		Precision: m.Precision, Recall: m.Recall, F1: m.F1,
		ExercisedRecall: m.ExercisedRecall,
		LeakageFPs:      m.LeakageFPs, LeakageRate: m.LeakageRate,
		FalsePositives: m.FalsePositives,
		MissedCensors:  m.MissedASes,
	}

	fracs := r.reductionFracs
	if fracs == nil && len(r.Pipelines) == 1 && r.Pipelines[0] != nil {
		for _, o := range r.Pipelines[0].Outcomes {
			if o.Class == sat.Multiple {
				fracs = append(fracs, o.ReductionFrac())
			}
		}
	}
	ev.MultipleCNFs = len(fracs)
	ev.CandidateReduction = evalmetrics.Reduction(fracs)

	truthSet := map[ASN]bool{}
	for _, as := range truth.Censors {
		truthSet[as] = true
	}
	for _, c := range r.Convergence {
		cc := CensorConvergence{
			ASN: c.ASN, TrueCensor: truthSet[c.ASN],
			FirstDay: -1, StableDay: -1, Windows: c.Windows,
		}
		if c.FirstWindow >= 0 && c.FirstWindow < len(r.Windows) {
			cc.FirstDay = r.Windows[c.FirstWindow].EndDay
		}
		if c.StableFrom >= 0 && c.StableFrom < len(r.Windows) {
			cc.StableDay = r.Windows[c.StableFrom].EndDay
		}
		ev.Convergence = append(ev.Convergence, cc)
	}
	return ev
}

// ChokePointCandidate is one high-betweenness border AS, scored and
// cross-referenced against the verdict and the ground truth — the
// structural candidate report for chokepoint-style deployments.
type ChokePointCandidate struct {
	ASN           ASN
	Name, Country string
	// Score is the AS's normalized betweenness centrality in [0, 1].
	Score float64
	// Identified reports whether the tomography named this AS;
	// TrueCensor whether the ground-truth registry did.
	Identified, TrueCensor bool
}

// ChokePoints ranks the topology's border ASes by betweenness
// centrality and returns the top n (all when n <= 0), cross-referenced
// against the run's verdict and ground truth. It returns nil when the
// result carries no routable topology — matrix mode, or a metadata-only
// replay whose graph has no links.
func (r *Result) ChokePoints(n int) []ChokePointCandidate {
	if r == nil || r.Mode == ModeMatrix || len(r.Pipelines) != 1 {
		return nil
	}
	p := r.Pipelines[0]
	if p == nil || p.Graph == nil || len(p.Graph.Links) == 0 {
		return nil
	}
	ranked := p.Graph.ChokePoints()
	if n > 0 && len(ranked) > n {
		ranked = ranked[:n]
	}
	out := make([]ChokePointCandidate, 0, len(ranked))
	for _, cp := range ranked {
		c := ChokePointCandidate{ASN: cp.ASN, Score: cp.Score}
		if as, ok := p.Graph.ByASN(cp.ASN); ok {
			c.Name, c.Country = as.Name, as.Country
		}
		_, c.Identified = r.Identified[cp.ASN]
		if p.Censors != nil {
			_, c.TrueCensor = p.Censors.Policy(cp.ASN)
		}
		out = append(out, c)
	}
	return out
}

// countInTruth counts distinct members of s that appear in truth.
func countInTruth(s, truth []ASN) int {
	in := map[ASN]bool{}
	for _, as := range truth {
		in[as] = true
	}
	seen := map[ASN]bool{}
	n := 0
	for _, as := range s {
		if in[as] && !seen[as] {
			seen[as] = true
			n++
		}
	}
	return n
}

// sortASNs sorts ascending in place.
func sortASNs(s []ASN) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
