package churntomo

// Experiment is the unified entry point: one context-aware, option-driven
// abstraction that executes batch, streaming and matrix runs through a
// single cell runner. The deprecated Run/StreamSweep/RunMatrix entry
// points are thin shims over the same code path, which is what keeps their
// outputs byte-identical to Experiment's.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"churntomo/internal/iclab"
	"churntomo/internal/leakage"
	"churntomo/internal/parallel"
	"churntomo/internal/sat"
	"churntomo/internal/scenario"
	"churntomo/internal/stream"
	"churntomo/internal/tomo"
)

// Mode is how an Experiment executes.
type Mode int

const (
	// ModeBatch measures everything, then builds and solves once.
	ModeBatch Mode = iota
	// ModeStreaming replays the scenario day by day through the
	// incremental windowed localizer.
	ModeStreaming
	// ModeMatrix runs many whole pipelines concurrently and aggregates.
	ModeMatrix
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBatch:
		return "batch"
	case ModeStreaming:
		return "streaming"
	case ModeMatrix:
		return "matrix"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Experiment is one configured experiment: construct with New, execute
// with Run. An Experiment is immutable after New and safe to Run multiple
// times (every run is deterministic for the same options) or concurrently.
type Experiment struct {
	base Config

	streaming      bool
	window, stride int
	minCNFs        int
	seedSweep      int
	scaleFactors   []float64
	cells          []Config
	matrixWorkers  int
	ablation       bool

	// procs > 0 switches execution to the distributed process pool: matrix
	// cells (or a batch run's measurement days) run in procs worker
	// subprocesses. workerCmd overrides the worker argv (default: this
	// binary re-executed with the magic worker argument); workerMemMB is
	// the per-worker soft memory budget hint.
	procs       int
	workerCmd   []string
	workerMemMB int

	// source is the experiment-wide measurement source (nil = the default
	// ScenarioSource); cellSources is the WithSources matrix — one cell
	// per source, overriding source per cell.
	source      Source
	cellSources []Source

	// specOverride is the explicit composed spec from WithScenarioSpec;
	// nil means cells resolve their Config.Scenario name against the
	// preset registry. scenarioName is the WithScenario selection; both
	// survive a later WithConfig (New re-applies them to the base config).
	specOverride *scenario.Spec
	scenarioName string

	observers []Observer
	obsMu     sync.Mutex
}

// New constructs an Experiment from functional options, validating every
// option and the combination: streaming options (WithWindow, WithStride,
// WithStreaming) and matrix options (WithSeedSweep, WithScaleSweep,
// WithConfigs) are mutually exclusive, and at most one matrix shape may be
// given. With no options the experiment is a batch DefaultConfig run.
func New(opts ...Option) (*Experiment, error) {
	e := &Experiment{}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("churntomo: New: nil Option")
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	shapes := 0
	for _, set := range []bool{e.seedSweep > 1, len(e.scaleFactors) > 0, len(e.cells) > 0, len(e.cellSources) > 0} {
		if set {
			shapes++
		}
	}
	if shapes > 1 {
		return nil, fmt.Errorf("churntomo: New: choose at most one of WithSeedSweep, WithScaleSweep, WithConfigs and WithSources")
	}
	if shapes > 0 && e.streaming {
		return nil, fmt.Errorf("churntomo: New: streaming and matrix modes are mutually exclusive")
	}
	if e.source != nil && len(e.cellSources) > 0 {
		return nil, fmt.Errorf("churntomo: New: WithSource and WithSources are mutually exclusive")
	}
	// A sweep varies the world per cell; a replay source fixes the data,
	// so every cell would be identical — the library-level twin of
	// churnlab's -input/-matrix conflict.
	if e.source != nil && shapes > 0 {
		if _, ok := e.source.(*ScenarioSource); !ok {
			return nil, fmt.Errorf("churntomo: New: a matrix sweep resamples the world per cell, but source %q replays the same recorded data into every cell; use WithSources for per-cell datasets", e.source.Label())
		}
	}
	// A scenario selection steers world synthesis; combined with a source
	// that replays recorded data it would be silently ignored.
	if e.scenarioName != "" || e.specOverride != nil {
		for _, src := range append([]Source{e.source}, e.cellSources...) {
			if src == nil {
				continue
			}
			if _, ok := src.(*ScenarioSource); !ok {
				return nil, fmt.Errorf("churntomo: New: source %q replays recorded data, which a scenario selection cannot steer; drop one", src.Label())
			}
		}
	}
	// Distributed execution crosses a process boundary, so everything a
	// worker needs must serialize: provider implementations (composed
	// specs) and arbitrary Source values cannot, and the concurrency knobs
	// that assume shared memory contradict it.
	if e.procs > 0 {
		if e.streaming {
			return nil, fmt.Errorf("churntomo: New: WithDistributed and streaming are mutually exclusive: the incremental localizer consumes days in order in one process")
		}
		if e.matrixWorkers > 0 {
			return nil, fmt.Errorf("churntomo: New: WithMatrixWorkers and WithDistributed both bound matrix concurrency (in-process goroutines vs worker processes); choose one")
		}
		if e.specOverride != nil {
			return nil, fmt.Errorf("churntomo: New: WithScenarioSpec composes provider implementations, which cannot cross the worker process boundary; register the composition as a named scenario, or drop WithDistributed")
		}
		srcs := e.cellSources
		if len(srcs) == 0 {
			srcs = []Source{e.sourceFor(-1)}
		}
		matrix := e.seedSweep > 1 || len(e.scaleFactors) > 0 || len(e.cells) > 0 || len(e.cellSources) > 0
		for i, src := range srcs {
			switch s := src.(type) {
			case *ScenarioSource:
				if s.Spec != nil {
					return nil, fmt.Errorf("churntomo: New: source %q carries a composed spec, which cannot cross the worker process boundary; register it as a named scenario, or drop WithDistributed", src.Label())
				}
			case *FileSource, *Dataset:
				if !matrix {
					return nil, fmt.Errorf("churntomo: New: WithDistributed splits a batch run's measurement schedule across processes, but source %q replays recorded data with nothing left to measure; drop WithDistributed", src.Label())
				}
			default:
				return nil, fmt.Errorf("churntomo: New: cell %d: custom Source %q cannot cross the worker process boundary; use scenario synthesis, a FileSource or a *Dataset", i, src.Label())
			}
		}
	} else {
		if len(e.workerCmd) > 0 {
			return nil, fmt.Errorf("churntomo: New: WithWorkerBinary without WithDistributed: the worker binary is only consulted by distributed runs")
		}
		if e.workerMemMB > 0 {
			return nil, fmt.Errorf("churntomo: New: WithWorkerMemoryMB without WithDistributed: the memory budget applies to worker processes")
		}
	}
	// Scenario selection is order-insensitive with respect to WithConfig:
	// a WithScenario/WithScenarioSpec anywhere in the option list wins
	// over whatever Config.Scenario a WithConfig carried, and the world
	// actually built is always the one the result records. Scenario names
	// fail here, at construction, not mid-run.
	switch {
	case e.specOverride != nil:
		e.base.Scenario = e.specOverride.Name
		// The override decides every cell's world; a cell config naming a
		// different scenario would be silently ignored, so reject it.
		for i := range e.cells {
			if s := e.cells[i].Scenario; s != "" && s != e.specOverride.Name {
				return nil, fmt.Errorf("churntomo: New: cell %d names scenario %q, which WithScenarioSpec(%q) would override; drop one",
					i, s, e.specOverride.Name)
			}
			e.cells[i].Scenario = e.specOverride.Name
		}
	case e.scenarioName != "":
		e.base.Scenario = e.scenarioName
		// Cells that don't name their own scenario inherit the
		// experiment-level selection; explicit cell names stay honored
		// (a WithConfigs grid may mix scenarios per cell).
		for i := range e.cells {
			if e.cells[i].Scenario == "" {
				e.cells[i].Scenario = e.scenarioName
			}
		}
		fallthrough
	default:
		if _, err := resolveScenario(e.base.Scenario); err != nil {
			return nil, err
		}
		for i := range e.cells {
			if _, err := resolveScenario(e.cells[i].Scenario); err != nil {
				return nil, fmt.Errorf("churntomo: New: cell %d: %w", i, err)
			}
		}
	}
	return e, nil
}

// Mode reports how the experiment will execute.
func (e *Experiment) Mode() Mode {
	switch {
	case e.seedSweep > 1 || len(e.scaleFactors) > 0 || len(e.cells) > 0 || len(e.cellSources) > 0:
		return ModeMatrix
	case e.streaming:
		return ModeStreaming
	default:
		return ModeBatch
	}
}

// emit delivers an event to every registered observer, serialized so
// concurrent matrix cells never interleave observer calls.
func (e *Experiment) emit(ev Event) {
	if len(e.observers) == 0 {
		return
	}
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	for _, obs := range e.observers {
		obs(ev)
	}
}

// Run executes the experiment: substrate generation, measurement,
// localization — batch, streaming or matrix, per the options — honoring
// ctx cancellation and deadline at every stage boundary and inside the
// sharded day/solve loops. Once ctx is done, no further stage, day shard,
// CNF solve or matrix cell starts and Run returns ctx.Err(); work already
// in flight finishes first (bounded by one day's measurement or one CNF
// solve), and no goroutines are leaked. A nil ctx means context.Background.
//
// In matrix mode a failed cell does not abort the run — its error lands in
// Result.Cells and MatrixSummary.Failed — but a done ctx does.
func (e *Experiment) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.Mode() == ModeMatrix {
		return e.runMatrixMode(ctx)
	}
	var cell *cellRun
	var err error
	if e.procs > 0 {
		// Batch under WithDistributed: fan the measurement days out across
		// worker processes; New already excluded streaming and replays.
		cell, err = e.runCellDistributed(ctx, e.base)
	} else {
		cell, err = e.runCell(ctx, e.base, -1)
	}
	if err != nil {
		return nil, err
	}
	return e.singleResult(cell), nil
}

// cellRun is one cell's raw outcome before Result conversion.
type cellRun struct {
	cfg     Config // defaults filled
	pipe    *Pipeline
	windows []*stream.Window
	conv    []stream.Convergence
}

// final returns the last emitted window, or nil.
func (cr *cellRun) final() *stream.Window {
	if len(cr.windows) == 0 {
		return nil
	}
	return cr.windows[len(cr.windows)-1]
}

// cellSpec resolves the scenario one cell builds under: the explicit
// WithScenarioSpec composition when given, the cell config's named preset
// otherwise (so a WithConfigs grid may mix scenarios per cell).
func (e *Experiment) cellSpec(cfg Config) (scenario.Spec, error) {
	if e.specOverride != nil {
		return *e.specOverride, nil
	}
	return resolveScenario(cfg.Scenario)
}

// resolvedMinCNFs is the corroboration threshold after defaulting.
func (e *Experiment) resolvedMinCNFs() int {
	if e.minCNFs > 0 {
		return e.minCNFs
	}
	return identifyMinCNFs
}

// sourceFor resolves which Source feeds a cell: the per-cell WithSources
// entry, the experiment-wide WithSource/WithInput selection, or the
// default ScenarioSource.
func (e *Experiment) sourceFor(cell int) Source {
	if cell >= 0 && cell < len(e.cellSources) {
		return e.cellSources[cell]
	}
	if e.source != nil {
		return e.source
	}
	return defaultSource
}

// openCell obtains a cell's pipeline skeleton and day-ordered record
// shards from its source. Built-in sources implement the internal
// cellSource fast path (the ScenarioSource one is byte-identical to the
// pre-Source fused pipeline); external Source implementations go through
// the public Open contract and the dataset adapter.
func (e *Experiment) openCell(ctx context.Context, src Source, cfg Config, emit func(Event)) (*Pipeline, [][]iclab.Record, error) {
	if cs, ok := src.(cellSource); ok {
		return cs.openCell(ctx, e, cfg, emit)
	}
	ev := newEvent(StageLoad)
	ev.Stats.Seed = cfg.Seed
	ev.Source = src.Label()
	emit(ev)
	d, err := src.Open(ctx, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("churntomo: source %q: %w", src.Label(), err)
	}
	f, err := publicToFile(d)
	if err != nil {
		return nil, nil, fmt.Errorf("churntomo: source %q: %w", src.Label(), err)
	}
	return adoptFile(cfg, f)
}

// runCell executes one pipeline — THE code path shared by every mode and
// every deprecated shim. cell is the matrix cell index, -1 outside matrix
// mode; it tags every emitted event. The cell's Source supplies the
// pipeline skeleton and the day shards (synthesized or replayed); batch
// cells then localize with one BuildAndSolve while streaming cells replay
// the day shards through a stream.Engine. Cancellation is checked at each
// stage boundary, between streamed days, and inside the sharded loops via
// the ctx-aware engines.
func (e *Experiment) runCell(ctx context.Context, cfg Config, cell int) (*cellRun, error) {
	cfg.Progress = nil // progress flows through the event stream only
	emit := func(ev Event) {
		ev.Cell = cell
		e.emit(ev)
	}

	p, shards, err := e.openCell(ctx, e.sourceFor(cell), cfg, emit)
	if err != nil {
		return nil, err
	}
	cfg = p.Config // defaults filled, source metadata adopted
	cr := &cellRun{cfg: cfg, pipe: p}

	if e.streaming && cell < 0 {
		if err := e.replay(ctx, cr, shards, emit); err != nil {
			return nil, err
		}
		// The pushed shards carry the IDs the batch merge would assign, so
		// the merged dataset is bit-identical to a batch run's. The batch
		// Localize artifacts stay nil — the window timeline replaces them.
		p.Dataset = iclab.NewDataset(p.Scenario, iclab.MergeShards(shards))
		return cr, nil
	}

	p.Dataset = iclab.NewDataset(p.Scenario, iclab.MergeShards(shards))
	ev := newEvent(StageSolve)
	ev.Stats.Seed = cfg.Seed
	emit(ev)
	p.Instances, p.Outcomes, err = tomo.BuildAndSolveCtx(ctx, p.Dataset.Records, tomo.BuildConfig{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	p.Identified = tomo.IdentifyCensors(p.Outcomes, e.resolvedMinCNFs())
	p.Leakage = leakage.Analyze(p.Outcomes, p.Graph)
	return cr, nil
}

// replay pushes the measured day shards through the streaming localizer,
// emitting StageDay and StageWindow events as the timeline unfolds.
func (e *Experiment) replay(ctx context.Context, cr *cellRun, shards [][]iclab.Record, emit func(Event)) error {
	eng := stream.NewEngine(stream.Config{
		Window:  e.window,
		Stride:  e.stride,
		MinCNFs: e.resolvedMinCNFs(),
		Build:   tomo.BuildConfig{Workers: cr.cfg.Workers},
	})
	record := func(w *stream.Window) {
		if w == nil {
			return
		}
		cr.windows = append(cr.windows, w)
		ev := newEvent(StageWindow)
		ev.Window = w.Index
		ev.Stats = EventStats{
			Seed: cr.cfg.Seed, StartDay: w.StartDay, EndDay: w.EndDay,
			CNFs: len(w.Outcomes), Solved: w.Solved, Reused: w.Reused,
			Censors: len(w.Identified),
		}
		emit(ev)
	}
	for day, records := range shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, err := eng.PushCtx(ctx, records)
		if err != nil {
			return err
		}
		ev := newEvent(StageDay)
		ev.Day = day
		ev.Stats.Seed = cr.cfg.Seed
		emit(ev)
		record(w)
	}
	// Localize any tail days the stride grid left uncovered, so every
	// measured day appears in the timeline and a cumulative replay's
	// final window always equals the batch result.
	w, err := eng.FlushCtx(ctx)
	if err != nil {
		return err
	}
	record(w)
	cr.conv = stream.Converge(cr.windows)
	return nil
}

// singleResult converts a batch or streaming cell into the public Result.
func (e *Experiment) singleResult(cr *cellRun) *Result {
	p := cr.pipe
	res := &Result{
		Config:    cr.cfg,
		Mode:      e.Mode(),
		Pipelines: []*Pipeline{p},
	}
	var outcomes []tomo.Outcome
	if e.streaming {
		res.Windows = windowResultsOf(cr.windows)
		res.Convergence = convergencesOf(cr.conv)
		if final := cr.final(); final != nil {
			outcomes = final.Outcomes
			res.Identified = final.Identified
		} else {
			res.Identified = map[ASN]*IdentifiedCensor{}
		}
		if outcomes != nil {
			res.Leakage = leakageSummaryOf(leakage.Analyze(outcomes, p.Graph), p.Graph)
		}
	} else {
		outcomes = p.Outcomes
		res.Identified = p.Identified
		res.Leakage = leakageSummaryOf(p.Leakage, p.Graph)
	}
	res.Censors = censorsOf(res.Identified, p)
	res.Summary = summaryOf(p, outcomes)
	res.Churn = churnOf(p)
	res.ChurnByClass = churnByClassOf(p)
	if e.ablation {
		res.NoChurn = ablationOf(p, cr.cfg.Workers)
	}
	for _, o := range outcomes {
		if o.Class == sat.Multiple {
			res.reductionFracs = append(res.reductionFracs, o.ReductionFrac())
		}
	}
	// Ground-truth self-grading: every synthesized (or fully exported)
	// dataset knows who really censors, so score the verdict against it.
	// Metadata-only replays have no registry and stay ungraded.
	res.Evaluation = Evaluate(res, res.Truth())
	return res
}

// matrixConfigs expands the configured sweep into per-cell configs.
func (e *Experiment) matrixConfigs() []Config {
	base := e.base
	base.fillDefaults()
	var out []Config
	switch {
	case len(e.cells) > 0:
		out = append([]Config(nil), e.cells...)
	case len(e.cellSources) > 0:
		// One cell per source, all under the base configuration — the
		// source decides the data, the config the analysis knobs.
		out = make([]Config, len(e.cellSources))
		for i := range out {
			out[i] = base
		}
	case len(e.scaleFactors) > 0:
		out = ScaleSweep(base, e.scaleFactors)
	default:
		out = SeedSweep(base, e.seedSweep)
	}
	for i := range out {
		// Per-stage progress from concurrent pipelines would interleave;
		// the event stream reports per cell instead.
		out[i].Progress = nil
	}
	return out
}

// runMatrixCells executes every cell on the matrix worker pool, returning
// per-cell results in input order — the core shared with the deprecated
// Runner.RunMatrix. A failed cell carries its error instead of aborting
// the sweep; a done ctx stops dispatching further cells.
func (e *Experiment) runMatrixCells(ctx context.Context, cfgs []Config) []MatrixResult {
	results := make([]MatrixResult, len(cfgs))
	//churnvet:ok errflow -- a done ctx surfaces per cell: runCell returns ctx.Err into each MatrixResult, so the sweep-level error would only duplicate what every cell already carries
	_ = parallel.ForEachCtx(ctx, e.matrixWorkers, len(cfgs), func(i int) {
		cfg := cfgs[i]
		cr, err := e.runCell(ctx, cfg, i)
		res := MatrixResult{Index: i, Config: cfg, Err: err}
		if err == nil {
			res.Pipeline = cr.pipe
		}
		results[i] = res
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return // a canceled cell is not an outcome worth reporting
		}
		ev := newEvent(StageCell)
		ev.Cell = i
		ev.Err = err
		ev.Stats.Seed = cfg.Seed
		if err == nil {
			ev.Stats.Censors = len(cr.pipe.Identified)
			ev.Stats.CNFs = len(cr.pipe.Outcomes)
		}
		// runCell tags events with its own index; StageCell is emitted
		// here so its Cell index survives the TextObserver filter.
		e.emit(ev)
	})
	return results
}

// runMatrixMode executes the matrix and folds it into a Result.
func (e *Experiment) runMatrixMode(ctx context.Context) (*Result, error) {
	cfgs := e.matrixConfigs()
	var results []MatrixResult
	if e.procs > 0 {
		var err error
		if results, err = e.runMatrixDistributed(ctx, cfgs); err != nil {
			return nil, err
		}
	} else {
		results = e.runMatrixCells(ctx, cfgs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base := e.base
	base.fillDefaults()
	base.Progress = nil
	agg := AggregateMatrix(results)
	res := &Result{
		Config: base,
		Mode:   ModeMatrix,
		Matrix: matrixSummaryOf(agg, results),
	}
	for _, mr := range results {
		cs := CellStatus{Index: mr.Index, Config: mr.Config, Err: mr.Err}
		if s := mr.summary(); s != nil {
			cs.Censors = len(s.Identified)
			cs.CNFs = s.CNFs
		}
		res.Cells = append(res.Cells, cs)
		res.Pipelines = append(res.Pipelines, mr.Pipeline)
	}
	return res, nil
}
