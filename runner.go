package churntomo

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"churntomo/internal/anomaly"
	"churntomo/internal/parallel"
	"churntomo/internal/sat"
	"churntomo/internal/topology"
)

// Runner executes a matrix of Configs — seed sweeps, scale sweeps, ablation
// grids — with whole pipelines running concurrently, and feeds the results
// to AggregateMatrix. Each cell is an independent deterministic pipeline,
// so a matrix run is reproducible cell-by-cell regardless of scheduling.
type Runner struct {
	// Workers is how many pipelines run at once; 0 uses GOMAXPROCS.
	// Stage-level parallelism inside each pipeline still follows that
	// cell's Config.Workers, so for wide matrices it usually pays to set
	// Config.Workers to 1 and let the matrix supply the concurrency.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// MatrixResult is one matrix cell's outcome.
type MatrixResult struct {
	Index    int
	Config   Config
	Pipeline *Pipeline
	Err      error
}

// RunMatrix runs every config and returns results in input order. A failed
// cell carries its error instead of aborting the sweep.
func (r *Runner) RunMatrix(cfgs []Config) []MatrixResult {
	results := make([]MatrixResult, len(cfgs))
	var mu sync.Mutex // serializes Progress writes
	runCell := func(i int) {
		cfg := cfgs[i]
		// Per-stage progress from concurrent pipelines would interleave;
		// the runner reports per cell instead.
		cfg.Progress = nil
		p, err := Run(cfg)
		results[i] = MatrixResult{Index: i, Config: cfg, Pipeline: p, Err: err}
		if r.Progress != nil {
			mu.Lock()
			if err != nil {
				fmt.Fprintf(r.Progress, "matrix cell %d (seed %d): %v\n", i, cfg.Seed, err)
			} else {
				fmt.Fprintf(r.Progress, "matrix cell %d (seed %d): %d censors, %d CNFs\n",
					i, cfg.Seed, len(p.Identified), len(p.Outcomes))
			}
			mu.Unlock()
		}
	}
	parallel.ForEach(r.Workers, len(cfgs), runCell)
	return results
}

// SeedSweep derives n configs from base with consecutive seeds starting at
// base.Seed — the standard way to measure how stable an identification is
// under substrate resampling.
func SeedSweep(base Config, n int) []Config {
	base.fillDefaults()
	out := make([]Config, n)
	for i := range out {
		out[i] = base
		out[i].Seed = base.Seed + uint64(i)
	}
	return out
}

// ScaleSweep derives one config per factor, scaling the platform dimensions
// (vantages, URLs, days) of base while keeping its seed and topology fixed
// — a fleet-growth ablation. Factors below the minimum viable platform are
// clamped to 2 vantages/URLs and 1 day.
func ScaleSweep(base Config, factors []float64) []Config {
	base.fillDefaults()
	scale := func(n int, f float64, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	out := make([]Config, len(factors))
	for i, f := range factors {
		out[i] = base
		out[i].Vantages = scale(base.Vantages, f, 2)
		out[i].URLs = scale(base.URLs, f, 2)
		out[i].Days = scale(base.Days, f, 1)
	}
	return out
}

// AggregatedCensor is one AS's identification record across a matrix.
type AggregatedCensor struct {
	ASN topology.ASN
	// Runs is how many successful cells identified the AS.
	Runs int
	// CNFs is the total number of corroborating unique-solution CNFs
	// across those cells.
	CNFs int
	// Kinds unions the anomaly kinds the AS was identified for.
	Kinds anomaly.Set
}

// MatrixAggregate fuses a matrix's per-cell results.
type MatrixAggregate struct {
	Runs   int // successful cells
	Failed int
	// Censors maps each AS identified by at least one cell to its record.
	Censors map[topology.ASN]*AggregatedCensor
	// UniqueCNFs and TotalCNFs count unique-solution and all CNFs across
	// cells.
	UniqueCNFs, TotalCNFs int
	// LeakASes and LeakCountries sum the per-cell leakage summaries
	// (censors leaking to other ASes / to other countries).
	LeakASes, LeakCountries int
}

// AggregateMatrix folds matrix results into one summary. Failed cells are
// counted and otherwise skipped.
func AggregateMatrix(results []MatrixResult) *MatrixAggregate {
	agg := &MatrixAggregate{Censors: map[topology.ASN]*AggregatedCensor{}}
	for _, res := range results {
		if res.Err != nil || res.Pipeline == nil {
			agg.Failed++
			continue
		}
		agg.Runs++
		p := res.Pipeline
		agg.TotalCNFs += len(p.Outcomes)
		for _, o := range p.Outcomes {
			if o.Class == sat.Unique {
				agg.UniqueCNFs++
			}
		}
		for asn, c := range p.Identified {
			a := agg.Censors[asn]
			if a == nil {
				a = &AggregatedCensor{ASN: asn}
				agg.Censors[asn] = a
			}
			a.Runs++
			a.CNFs += c.CNFs
			a.Kinds |= c.Kinds
		}
		agg.LeakASes += p.Leakage.LeakToOtherASes()
		agg.LeakCountries += p.Leakage.LeakToOtherCountries()
	}
	return agg
}

// StableCensors lists the ASes identified by every successful cell,
// ascending — the identifications that survive substrate resampling.
func (a *MatrixAggregate) StableCensors() []topology.ASN {
	var out []topology.ASN
	for asn, c := range a.Censors {
		if a.Runs > 0 && c.Runs == a.Runs {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RankedCensors lists all aggregated censors, most-corroborated first
// (by identifying runs, then total CNFs, then ASN).
func (a *MatrixAggregate) RankedCensors() []*AggregatedCensor {
	out := make([]*AggregatedCensor, 0, len(a.Censors))
	for _, c := range a.Censors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		if out[i].CNFs != out[j].CNFs {
			return out[i].CNFs > out[j].CNFs
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
