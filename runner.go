package churntomo

import (
	"context"
	"fmt"
	"io"
	"sort"

	"churntomo/internal/anomaly"
	"churntomo/internal/sat"
	"churntomo/internal/stream"
	"churntomo/internal/topology"
)

// Runner executes a matrix of Configs — seed sweeps, scale sweeps, ablation
// grids — with whole pipelines running concurrently, and feeds the results
// to AggregateMatrix. Each cell is an independent deterministic pipeline,
// so a matrix run is reproducible cell-by-cell regardless of scheduling.
//
// Deprecated: use New(WithConfigs(cfgs...), WithMatrixWorkers(n)) — or
// WithSeedSweep/WithScaleSweep — and Experiment.Run(ctx), which add
// cancellation and an aggregated Result. Runner remains a thin shim over
// the same code path.
type Runner struct {
	// Workers is how many pipelines run at once; 0 uses GOMAXPROCS.
	// Stage-level parallelism inside each pipeline still follows that
	// cell's Config.Workers, so for wide matrices it usually pays to set
	// Config.Workers to 1 and let the matrix supply the concurrency.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// MatrixResult is one matrix cell's outcome.
type MatrixResult struct {
	Index  int
	Config Config
	// Pipeline holds the cell's full internal artifacts when the cell ran
	// in-process; nil for distributed cells (the artifacts never cross the
	// process boundary) and for failed cells.
	Pipeline *Pipeline
	// Summary is the cell's condensed outcome when the cell ran in a
	// worker process (WithDistributed). In-process cells leave it nil —
	// aggregation derives the identical summary from Pipeline on demand.
	Summary *CellSummary
	Err     error
}

// CellSummary is the slice of a cell's outcome that matrix aggregation
// reads — everything AggregateMatrix and the matrix report consume,
// without the full Pipeline artifacts. It is what a distributed cell
// ships back over the pipe.
type CellSummary struct {
	// CNFs and UniqueCNFs count all and unique-solution CNFs.
	CNFs, UniqueCNFs int
	// Identified is the cell's censor verdict.
	Identified map[ASN]*IdentifiedCensor
	// LeakASes and LeakCountries are the cell's leakage headlines.
	LeakASes, LeakCountries int
	// ASes is the cell world's complete AS metadata table, for resolving
	// censor names in the aggregate (ASN->name is seed-dependent). Nil for
	// summaries derived from an in-process Pipeline, whose Graph serves
	// the same lookups.
	ASes map[ASN]ASInfo
}

// summary returns the cell's aggregation view: the shipped Summary of a
// distributed cell, or the equivalent derived from an in-process
// Pipeline. Nil for failed cells.
func (mr *MatrixResult) summary() *CellSummary {
	if mr.Err != nil {
		return nil
	}
	if mr.Summary != nil {
		return mr.Summary
	}
	if mr.Pipeline != nil {
		return cellSummaryOf(mr.Pipeline)
	}
	return nil
}

// cellSummaryOf condenses an in-process cell's pipeline into exactly what
// a distributed cell would have shipped.
func cellSummaryOf(p *Pipeline) *CellSummary {
	s := &CellSummary{CNFs: len(p.Outcomes), Identified: p.Identified}
	for _, o := range p.Outcomes {
		if o.Class == sat.Unique {
			s.UniqueCNFs++
		}
	}
	if p.Leakage != nil {
		s.LeakASes = p.Leakage.LeakToOtherASes()
		s.LeakCountries = p.Leakage.LeakToOtherCountries()
	}
	return s
}

// RunMatrix runs every config and returns results in input order. A failed
// cell carries its error instead of aborting the sweep.
//
// Deprecated: use New(WithConfigs(cfgs...)) and Experiment.Run(ctx).
func (r *Runner) RunMatrix(cfgs []Config) []MatrixResult {
	e := &Experiment{cells: append([]Config(nil), cfgs...), matrixWorkers: r.Workers}
	if r.Progress != nil {
		e.observers = []Observer{TextObserver(r.Progress)}
	}
	return e.runMatrixCells(context.Background(), e.matrixConfigs())
}

// SeedSweep derives n configs from base with consecutive seeds starting at
// base.Seed — the standard way to measure how stable an identification is
// under substrate resampling.
func SeedSweep(base Config, n int) []Config {
	base.fillDefaults()
	out := make([]Config, n)
	for i := range out {
		out[i] = base
		out[i].Seed = base.Seed + uint64(i)
	}
	return out
}

// ScaleSweep derives one config per factor, scaling the platform dimensions
// (vantages, URLs, days) of base while keeping its seed and topology fixed
// — a fleet-growth ablation. Factors below the minimum viable platform are
// clamped to 2 vantages/URLs and 1 day.
func ScaleSweep(base Config, factors []float64) []Config {
	base.fillDefaults()
	scale := func(n int, f float64, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	out := make([]Config, len(factors))
	for i, f := range factors {
		out[i] = base
		out[i].Vantages = scale(base.Vantages, f, 2)
		out[i].URLs = scale(base.URLs, f, 2)
		out[i].Days = scale(base.Days, f, 1)
	}
	return out
}

// StreamConfig parameterizes a streaming replay (see StreamSweep).
type StreamConfig struct {
	// Window is the sliding window's width in days; 0 means cumulative
	// (every window starts at day 0), in which case the final window
	// reproduces the batch pipeline exactly. Negative is invalid.
	Window int
	// Stride is how many days the window advances between localizations;
	// 0 means 1. Negative is invalid.
	Stride int
	// MinCNFs is the per-window corroboration threshold for naming a
	// censor; 0 uses the pipeline default. Negative is invalid.
	MinCNFs int
}

// Validate rejects configurations that earlier versions silently
// misinterpreted (a negative Stride, for example, was treated as 1).
func (sc StreamConfig) Validate() error {
	if sc.Window < 0 {
		return fmt.Errorf("churntomo: StreamConfig.Window is %d; the window width must be >= 0 days (0 = cumulative)", sc.Window)
	}
	if sc.Stride < 0 {
		return fmt.Errorf("churntomo: StreamConfig.Stride is %d; the stride must be >= 0 days (0 = every day)", sc.Stride)
	}
	if sc.MinCNFs < 0 {
		return fmt.Errorf("churntomo: StreamConfig.MinCNFs is %d; the corroboration threshold must be >= 0 (0 = pipeline default)", sc.MinCNFs)
	}
	return nil
}

// StreamRun is a streaming replay's result: the substrate and full dataset,
// the per-window localization timeline, and the per-censor convergence
// stats derived from it.
type StreamRun struct {
	// Pipeline holds the substrate and the complete measured Dataset
	// (identical to a batch run's); its Localize artifacts are not
	// populated — the Windows timeline replaces them.
	Pipeline *Pipeline
	// Windows is the emitted timeline, in order.
	Windows []*stream.Window //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result.Windows is the exported form
	// Convergence summarizes each ever-identified censor's trajectory:
	// first window seen, how many windows until it stabilized.
	Convergence []stream.Convergence //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result.Convergence is the exported form
}

// Final returns the last emitted window, or nil when the replay was too
// short to fill one.
//
//churnvet:ok internalimport -- deprecated pre-Experiment surface; Result.FinalWindow is the exported form
func (sr *StreamRun) Final() *stream.Window {
	if len(sr.Windows) == 0 {
		return nil
	}
	return sr.Windows[len(sr.Windows)-1]
}

// StreamSweep replays one scenario day by day through the streaming
// localizer: measurement days are generated in parallel shards (exactly the
// batch engine's schedule), then pushed in day order into a stream.Engine
// that re-solves only the CNFs each day boundary touches. Substrate-stage
// progress goes to cfg.Progress, per-window progress to r.Progress; sc is
// validated up front (see StreamConfig.Validate).
//
// With sc.Window == 0 the replay is cumulative and the final window's
// identifications are identical to Run's on the same Config — the streaming
// determinism guarantee, pinned by TestStreamReplayMatchesBatch.
//
// Deprecated: use New(WithConfig(cfg), WithWindow(sc.Window),
// WithStride(sc.Stride)) and Experiment.Run(ctx).
func (r *Runner) StreamSweep(cfg Config, sc StreamConfig) (*StreamRun, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &Experiment{
		base:      cfg,
		streaming: true,
		window:    sc.Window,
		stride:    sc.Stride,
		minCNFs:   sc.MinCNFs,
	}
	e.base.Progress = nil
	// Legacy writer split: substrate stages printed to cfg.Progress (the
	// old path called Prepare, which stopped before the measurement
	// line), window lines to r.Progress (churnlab pointed both at
	// stderr). StageMeasure is excluded to keep the shim's output
	// byte-identical to the legacy StreamSweep's.
	if cfg.Progress != nil {
		stages := TextObserver(cfg.Progress)
		e.observers = append(e.observers, func(ev Event) {
			if ev.Stage != StageWindow && ev.Stage != StageMeasure {
				stages(ev)
			}
		})
	}
	if r.Progress != nil {
		windows := TextObserver(r.Progress)
		e.observers = append(e.observers, func(ev Event) {
			if ev.Stage == StageWindow {
				windows(ev)
			}
		})
	}
	cell, err := e.runCell(context.Background(), e.base, -1)
	if err != nil {
		return nil, err
	}
	return &StreamRun{
		Pipeline:    cell.pipe,
		Windows:     cell.windows,
		Convergence: cell.conv,
	}, nil
}

// AggregatedCensor is one AS's identification record across a matrix.
type AggregatedCensor struct {
	ASN topology.ASN
	// Runs is how many successful cells identified the AS.
	Runs int
	// CNFs is the total number of corroborating unique-solution CNFs
	// across those cells.
	CNFs int
	// Kinds unions the anomaly kinds the AS was identified for.
	Kinds anomaly.Set
}

// MatrixAggregate fuses a matrix's per-cell results.
type MatrixAggregate struct {
	Runs   int // successful cells
	Failed int
	// Censors maps each AS identified by at least one cell to its record.
	Censors map[topology.ASN]*AggregatedCensor
	// UniqueCNFs and TotalCNFs count unique-solution and all CNFs across
	// cells.
	UniqueCNFs, TotalCNFs int
	// LeakASes and LeakCountries sum the per-cell leakage summaries
	// (censors leaking to other ASes / to other countries).
	LeakASes, LeakCountries int
}

// AggregateMatrix folds matrix results into one summary. Failed cells are
// counted and otherwise skipped. It reads each cell through its summary
// view, so in-process and distributed cells aggregate identically — every
// fold is commutative (sums, unions), which is what makes the merged
// result independent of worker count and scheduling.
func AggregateMatrix(results []MatrixResult) *MatrixAggregate {
	agg := &MatrixAggregate{Censors: map[topology.ASN]*AggregatedCensor{}}
	for _, res := range results {
		s := res.summary()
		if s == nil {
			agg.Failed++
			continue
		}
		agg.Runs++
		agg.TotalCNFs += s.CNFs
		agg.UniqueCNFs += s.UniqueCNFs
		for asn, c := range s.Identified {
			a := agg.Censors[asn]
			if a == nil {
				a = &AggregatedCensor{ASN: asn}
				agg.Censors[asn] = a
			}
			a.Runs++
			a.CNFs += c.CNFs
			a.Kinds |= c.Kinds
		}
		agg.LeakASes += s.LeakASes
		agg.LeakCountries += s.LeakCountries
	}
	return agg
}

// StableCensors lists the ASes identified by every successful cell,
// ascending — the identifications that survive substrate resampling.
func (a *MatrixAggregate) StableCensors() []topology.ASN {
	var out []topology.ASN
	for asn, c := range a.Censors {
		if a.Runs > 0 && c.Runs == a.Runs {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RankedCensors lists all aggregated censors, most-corroborated first
// (by identifying runs, then total CNFs, then ASN).
func (a *MatrixAggregate) RankedCensors() []*AggregatedCensor {
	out := make([]*AggregatedCensor, 0, len(a.Censors))
	for _, c := range a.Censors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		if out[i].CNFs != out[j].CNFs {
			return out[i].CNFs > out[j].CNFs
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
