package churntomo

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/parallel"
	"churntomo/internal/sat"
	"churntomo/internal/stream"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// Runner executes a matrix of Configs — seed sweeps, scale sweeps, ablation
// grids — with whole pipelines running concurrently, and feeds the results
// to AggregateMatrix. Each cell is an independent deterministic pipeline,
// so a matrix run is reproducible cell-by-cell regardless of scheduling.
type Runner struct {
	// Workers is how many pipelines run at once; 0 uses GOMAXPROCS.
	// Stage-level parallelism inside each pipeline still follows that
	// cell's Config.Workers, so for wide matrices it usually pays to set
	// Config.Workers to 1 and let the matrix supply the concurrency.
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// MatrixResult is one matrix cell's outcome.
type MatrixResult struct {
	Index    int
	Config   Config
	Pipeline *Pipeline
	Err      error
}

// RunMatrix runs every config and returns results in input order. A failed
// cell carries its error instead of aborting the sweep.
func (r *Runner) RunMatrix(cfgs []Config) []MatrixResult {
	results := make([]MatrixResult, len(cfgs))
	var mu sync.Mutex // serializes Progress writes
	runCell := func(i int) {
		cfg := cfgs[i]
		// Per-stage progress from concurrent pipelines would interleave;
		// the runner reports per cell instead.
		cfg.Progress = nil
		p, err := Run(cfg)
		results[i] = MatrixResult{Index: i, Config: cfg, Pipeline: p, Err: err}
		if r.Progress != nil {
			mu.Lock()
			if err != nil {
				fmt.Fprintf(r.Progress, "matrix cell %d (seed %d): %v\n", i, cfg.Seed, err)
			} else {
				fmt.Fprintf(r.Progress, "matrix cell %d (seed %d): %d censors, %d CNFs\n",
					i, cfg.Seed, len(p.Identified), len(p.Outcomes))
			}
			mu.Unlock()
		}
	}
	parallel.ForEach(r.Workers, len(cfgs), runCell)
	return results
}

// SeedSweep derives n configs from base with consecutive seeds starting at
// base.Seed — the standard way to measure how stable an identification is
// under substrate resampling.
func SeedSweep(base Config, n int) []Config {
	base.fillDefaults()
	out := make([]Config, n)
	for i := range out {
		out[i] = base
		out[i].Seed = base.Seed + uint64(i)
	}
	return out
}

// ScaleSweep derives one config per factor, scaling the platform dimensions
// (vantages, URLs, days) of base while keeping its seed and topology fixed
// — a fleet-growth ablation. Factors below the minimum viable platform are
// clamped to 2 vantages/URLs and 1 day.
func ScaleSweep(base Config, factors []float64) []Config {
	base.fillDefaults()
	scale := func(n int, f float64, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	out := make([]Config, len(factors))
	for i, f := range factors {
		out[i] = base
		out[i].Vantages = scale(base.Vantages, f, 2)
		out[i].URLs = scale(base.URLs, f, 2)
		out[i].Days = scale(base.Days, f, 1)
	}
	return out
}

// StreamConfig parameterizes a streaming replay (see StreamSweep).
type StreamConfig struct {
	// Window is the sliding window's width in days; 0 means cumulative
	// (every window starts at day 0), in which case the final window
	// reproduces the batch pipeline exactly.
	Window int
	// Stride is how many days the window advances between localizations;
	// 0 means 1.
	Stride int
	// MinCNFs is the per-window corroboration threshold for naming a
	// censor; 0 uses the pipeline default.
	MinCNFs int
}

// StreamRun is a streaming replay's result: the substrate and full dataset,
// the per-window localization timeline, and the per-censor convergence
// stats derived from it.
type StreamRun struct {
	// Pipeline holds the substrate and the complete measured Dataset
	// (identical to a batch run's); its Localize artifacts are not
	// populated — the Windows timeline replaces them.
	Pipeline *Pipeline
	// Windows is the emitted timeline, in order.
	Windows []*stream.Window
	// Convergence summarizes each ever-identified censor's trajectory:
	// first window seen, how many windows until it stabilized.
	Convergence []stream.Convergence
}

// Final returns the last emitted window, or nil when the replay was too
// short to fill one.
func (sr *StreamRun) Final() *stream.Window {
	if len(sr.Windows) == 0 {
		return nil
	}
	return sr.Windows[len(sr.Windows)-1]
}

// StreamSweep replays one scenario day by day through the streaming
// localizer: measurement days are generated in parallel shards (exactly the
// batch engine's schedule), then pushed in day order into a stream.Engine
// that re-solves only the CNFs each day boundary touches. Per-window
// progress goes to r.Progress.
//
// With sc.Window == 0 the replay is cumulative and the final window's
// identifications are identical to Run's on the same Config — the streaming
// determinism guarantee, pinned by TestStreamReplayMatchesBatch.
func (r *Runner) StreamSweep(cfg Config, sc StreamConfig) (*StreamRun, error) {
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	cfg = p.Config // defaults filled
	shards := iclab.RunByDay(p.Scenario, cfg.platformConfig())

	minCNFs := sc.MinCNFs
	if minCNFs <= 0 {
		minCNFs = identifyMinCNFs
	}
	eng := stream.NewEngine(stream.Config{
		Window:  sc.Window,
		Stride:  sc.Stride,
		MinCNFs: minCNFs,
		Build:   tomo.BuildConfig{Workers: cfg.Workers},
	})
	run := &StreamRun{Pipeline: p}
	emit := func(w *stream.Window) {
		if w == nil {
			return
		}
		run.Windows = append(run.Windows, w)
		if r.Progress != nil {
			fmt.Fprintln(r.Progress, w)
		}
	}
	for _, day := range shards {
		emit(eng.Push(day))
	}
	// Localize any tail days the stride grid left uncovered, so every
	// measured day appears in the timeline and a cumulative replay's final
	// window always equals the batch result.
	emit(eng.Flush())
	run.Convergence = stream.Converge(run.Windows)
	// The pushed shards carry the IDs the batch merge would assign, so the
	// merged dataset is bit-identical to a batch run's.
	p.Dataset = iclab.NewDataset(p.Scenario, iclab.MergeShards(shards))
	return run, nil
}

// AggregatedCensor is one AS's identification record across a matrix.
type AggregatedCensor struct {
	ASN topology.ASN
	// Runs is how many successful cells identified the AS.
	Runs int
	// CNFs is the total number of corroborating unique-solution CNFs
	// across those cells.
	CNFs int
	// Kinds unions the anomaly kinds the AS was identified for.
	Kinds anomaly.Set
}

// MatrixAggregate fuses a matrix's per-cell results.
type MatrixAggregate struct {
	Runs   int // successful cells
	Failed int
	// Censors maps each AS identified by at least one cell to its record.
	Censors map[topology.ASN]*AggregatedCensor
	// UniqueCNFs and TotalCNFs count unique-solution and all CNFs across
	// cells.
	UniqueCNFs, TotalCNFs int
	// LeakASes and LeakCountries sum the per-cell leakage summaries
	// (censors leaking to other ASes / to other countries).
	LeakASes, LeakCountries int
}

// AggregateMatrix folds matrix results into one summary. Failed cells are
// counted and otherwise skipped.
func AggregateMatrix(results []MatrixResult) *MatrixAggregate {
	agg := &MatrixAggregate{Censors: map[topology.ASN]*AggregatedCensor{}}
	for _, res := range results {
		if res.Err != nil || res.Pipeline == nil {
			agg.Failed++
			continue
		}
		agg.Runs++
		p := res.Pipeline
		agg.TotalCNFs += len(p.Outcomes)
		for _, o := range p.Outcomes {
			if o.Class == sat.Unique {
				agg.UniqueCNFs++
			}
		}
		for asn, c := range p.Identified {
			a := agg.Censors[asn]
			if a == nil {
				a = &AggregatedCensor{ASN: asn}
				agg.Censors[asn] = a
			}
			a.Runs++
			a.CNFs += c.CNFs
			a.Kinds |= c.Kinds
		}
		agg.LeakASes += p.Leakage.LeakToOtherASes()
		agg.LeakCountries += p.Leakage.LeakToOtherCountries()
	}
	return agg
}

// StableCensors lists the ASes identified by every successful cell,
// ascending — the identifications that survive substrate resampling.
func (a *MatrixAggregate) StableCensors() []topology.ASN {
	var out []topology.ASN
	for asn, c := range a.Censors {
		if a.Runs > 0 && c.Runs == a.Runs {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RankedCensors lists all aggregated censors, most-corroborated first
// (by identifying runs, then total CNFs, then ASN).
func (a *MatrixAggregate) RankedCensors() []*AggregatedCensor {
	out := make([]*AggregatedCensor, 0, len(a.Censors))
	for _, c := range a.Censors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		if out[i].CNFs != out[j].CNFs {
			return out[i].CNFs > out[j].CNFs
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
