package churntomo

// This file is the experiment's observability surface: a typed Event
// stream replaces the old Progress io.Writer line printing. Observers
// registered with WithObserver receive one Event per pipeline stage, per
// streamed day, per emitted window and per finished matrix cell;
// TextObserver renders the stream back into exactly the progress lines the
// legacy writers printed, so churnlab's output is unchanged.

import (
	"fmt"
	"io"
)

// Stage identifies which part of an experiment an Event reports on.
type Stage int

// The stages, in the order a batch cell emits them. Streaming cells emit
// StageDay/StageWindow instead of StageSolve; matrix runs additionally
// emit one StageCell per finished cell.
const (
	StageTopology Stage = iota // AS graph generated
	StageTimeline              // churn timeline generated
	StageCensors               // censor policies placed
	StageIPASMap               // historical IP-to-AS database built
	StageScenario              // vantages and URLs selected
	StageMeasure               // measurement platform starting
	StageSolve                 // batch CNF build+solve starting
	StageDay                   // one day ingested by the streaming localizer
	StageWindow                // one streaming window localized
	StageCell                  // one matrix cell finished
	StageLoad                  // a recorded dataset being loaded from a Source
)

// String returns a stable lower-case stage name.
func (s Stage) String() string {
	switch s {
	case StageTopology:
		return "topology"
	case StageTimeline:
		return "timeline"
	case StageCensors:
		return "censors"
	case StageIPASMap:
		return "ipasmap"
	case StageScenario:
		return "scenario"
	case StageMeasure:
		return "measure"
	case StageSolve:
		return "solve"
	case StageDay:
		return "day"
	case StageWindow:
		return "window"
	case StageCell:
		return "cell"
	case StageLoad:
		return "load"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// EventStats carries the numbers attached to an Event. Only the fields
// relevant to the event's Stage are populated; Seed is always set.
type EventStats struct {
	// Seed is the cell's master seed (the base seed outside matrix mode).
	Seed uint64
	// ASes/Countries describe the topology (StageTopology).
	ASes, Countries int
	// Days is the measurement window length (StageTimeline).
	Days int
	// Vantages/URLs describe the platform scenario (StageScenario).
	Vantages, URLs int
	// CNFs counts constructed CNFs (StageWindow, StageCell).
	CNFs int
	// Censors counts identified censors (StageWindow, StageCell).
	Censors int
	// Solved/Reused split a window's incremental work (StageWindow).
	Solved, Reused int
	// StartDay/EndDay are a window's inclusive day range (StageWindow).
	StartDay, EndDay int
}

// Event is one observation of a running experiment.
type Event struct {
	Stage Stage
	// Cell is the matrix cell index the event belongs to, or -1 outside
	// matrix mode.
	Cell int
	// Day is the day ordinal for StageDay events, -1 otherwise.
	Day int
	// Window is the window ordinal for StageWindow events, -1 otherwise.
	Window int
	// Source labels the dataset origin of a StageLoad event (a file
	// path, a Source's Label), "" otherwise.
	Source string
	// Stats holds the stage-specific numbers.
	Stats EventStats
	// Err is the failure of a StageCell event whose cell errored, nil
	// otherwise. (A failed single-cell run surfaces its error from Run
	// directly, not through the event stream.)
	Err error
}

// newEvent returns an Event with the index fields at their "not
// applicable" sentinels.
func newEvent(stage Stage) Event {
	return Event{Stage: stage, Cell: -1, Day: -1, Window: -1}
}

// Observer receives experiment events. Observers are invoked synchronously
// and serialized — even when matrix cells run concurrently, at most one
// observer call is in flight at a time — so they need no locking of their
// own; slow observers stall the pipeline.
type Observer func(Event)

// TextObserver renders the event stream as the line-per-stage progress
// text the legacy Config.Progress and Runner.Progress writers printed,
// byte for byte. Per-stage lines from concurrent matrix cells would
// interleave, so inside a matrix only the per-cell completion lines are
// rendered — exactly the legacy Runner behaviour.
func TextObserver(w io.Writer) Observer {
	return func(ev Event) {
		if ev.Cell >= 0 && ev.Stage != StageCell {
			return
		}
		switch ev.Stage {
		case StageTopology:
			fmt.Fprintf(w, "generating topology (%d ASes, %d countries)\n", ev.Stats.ASes, ev.Stats.Countries)
		case StageTimeline:
			fmt.Fprintf(w, "generating churn timeline (%d days)\n", ev.Stats.Days)
		case StageCensors:
			fmt.Fprintln(w, "placing censors")
		case StageIPASMap:
			fmt.Fprintln(w, "building historical IP-to-AS database")
		case StageScenario:
			fmt.Fprintf(w, "selecting %d vantages and %d URLs\n", ev.Stats.Vantages, ev.Stats.URLs)
		case StageMeasure:
			fmt.Fprintln(w, "running measurement platform")
		case StageLoad:
			fmt.Fprintf(w, "loading dataset from %s\n", ev.Source)
		case StageSolve:
			fmt.Fprintln(w, "building and solving CNFs")
		case StageWindow:
			fmt.Fprintf(w, "window %d [day %d..%d]: %d CNFs (%d solved, %d reused), %d censors\n",
				ev.Window, ev.Stats.StartDay, ev.Stats.EndDay,
				ev.Stats.CNFs, ev.Stats.Solved, ev.Stats.Reused, ev.Stats.Censors)
		case StageCell:
			if ev.Err != nil {
				fmt.Fprintf(w, "matrix cell %d (seed %d): %v\n", ev.Cell, ev.Stats.Seed, ev.Err)
			} else {
				fmt.Fprintf(w, "matrix cell %d (seed %d): %d censors, %d CNFs\n",
					ev.Cell, ev.Stats.Seed, ev.Stats.Censors, ev.Stats.CNFs)
			}
		}
	}
}
