module churntomo

go 1.22
