#!/bin/sh
# check-api.sh: asserts the examples consume only churntomo's public API.
# The examples stand in for external modules — which cannot import
# churntomo/internal/... — so any such import here means the public
# Experiment/Result surface regressed. Run from the repo root;
# `make api-check` (part of the docs gate and `make ci`) wires it in.
set -eu
# Match the quoted import path, not prose mentioning it in comments.
hits=$(grep -rn '"churntomo/internal' examples/ || true)
if [ -n "$hits" ]; then
    echo "examples must not import churntomo/internal packages:" >&2
    echo "$hits" >&2
    exit 1
fi
