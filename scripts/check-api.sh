#!/bin/sh
# check-api.sh: asserts the public-API boundary holds in both directions.
# The examples stand in for external modules — which cannot import
# churntomo/internal/... — and the root package's exported surface must
# not leak internal named types without an exported alias. Both checks
# are the churnvet internalimport analyzer (internal/lint), which resolves
# real import paths and walks the type graph, so aliased imports and
# indirect type leaks are caught where the old grep for the quoted path
# was not. Run from the repo root; `make api-check` (part of the docs
# gate and `make ci`) wires it in.
set -eu
go run ./cmd/churnvet -only internalimport ./...
