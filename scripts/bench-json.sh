#!/bin/sh
# bench-json.sh: run the root package's benchmarks with -benchmem and emit
# the results as a JSON array, one object per benchmark, to the file named
# by $1 (default BENCH.json). This is the machine-readable perf datapoint
# `make bench-json` records per PR; diff successive files to see the
# trajectory.
#
# Output shape:
#   [{"name": "BenchmarkKernel_CNFBuild-8", "iterations": 1,
#     "ns_per_op": 123456.0, "bytes_per_op": 789, "allocs_per_op": 12}, ...]
set -eu
out=${1:-BENCH.json}
go=${GO:-go}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# -benchtime 1x keeps this a smoke-speed pass; bump via BENCHTIME for a
# statistically serious run.
"$go" test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-1x}" . >"$tmp"

awk '
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                   name, iters, ns, bytes, allocs)
    if (n++) printf(",\n")
    printf("%s", line)
}
BEGIN { printf("[\n") }
END   { printf("\n]\n") }
' "$tmp" >"$out"

count=$(grep -c '"name"' "$out" || true)
echo "bench-json: wrote $count benchmarks to $out" >&2
