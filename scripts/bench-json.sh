#!/bin/sh
# bench-json.sh: run the root package's benchmarks with -benchmem and emit
# the results as a JSON array, one object per benchmark, to the file named
# by $1 (default BENCH.json). This is the machine-readable perf datapoint
# `make bench-json` records per PR; diff successive files to see the
# trajectory.
#
# Each benchmark runs BENCHCOUNT times at BENCHTIME iterations and the
# recorded ns/op is the minimum across runs — single-run numbers at
# "iterations: 1" are dominated by scheduler and allocator noise, while
# min-of-N converges on the repeatable cost. bytes/op and allocs/op are
# deterministic per iteration count, so the minimum is exact for them.
#
# Output shape:
#   [{"name": "BenchmarkKernel_CNFBuild-8", "iterations": 3, "runs": 3,
#     "ns_per_op": 123456.0, "bytes_per_op": 789, "allocs_per_op": 12}, ...]
set -eu
out=${1:-BENCH.json}
go=${GO:-go}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Defaults: 3 timed iterations per run, best of 3 runs. Bump via BENCHTIME
# / BENCHCOUNT for a statistically serious pass.
"$go" test -run '^$' -bench . -benchmem \
	-benchtime "${BENCHTIME:-3x}" -count "${BENCHCOUNT:-3}" . >"$tmp"

awk '
/^Benchmark/ {
    name = $1; iters = $2; ns = $3 + 0
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    runs[name]++
    if (!(name in best) || ns < best[name]) {
        best[name] = ns
        bestIters[name] = iters
        bestBytes[name] = bytes
        bestAllocs[name] = allocs
    }
    if (runs[name] == 1) order[n++] = name
}
END {
    printf("[\n")
    for (i = 0; i < n; i++) {
        name = order[i]
        printf("  {\"name\": \"%s\", \"iterations\": %s, \"runs\": %d, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
               name, bestIters[name], runs[name], best[name], bestBytes[name], bestAllocs[name])
        if (i < n - 1) printf(",")
        printf("\n")
    }
    printf("]\n")
}
' "$tmp" >"$out"

count=$(grep -c '"name"' "$out" || true)
echo "bench-json: wrote $count benchmarks (min of ${BENCHCOUNT:-3} runs) to $out" >&2
