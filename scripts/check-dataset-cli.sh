#!/bin/sh
# check-dataset-cli.sh: asserts the export→import→replay workflow end to
# end at the CLI layer: genlab -export writes a dataset that churnlab
# -input analyzes to a byte-identical evaluation — batch and streaming —
# without regenerating the world. Run from the repo root; `make
# dataset-check` (part of `make ci`) wires it in.
set -eu
go=${GO:-go}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$go" run ./cmd/genlab -scale small -seed 7 -export "$tmp/ds.jsonl.gz" 2>/dev/null

"$go" run ./cmd/churnlab -scale small -seed 7 -quiet >"$tmp/direct.txt"
"$go" run ./cmd/churnlab -input "$tmp/ds.jsonl.gz" -quiet >"$tmp/replayed.txt"
if ! cmp -s "$tmp/direct.txt" "$tmp/replayed.txt"; then
    echo "dataset-check: batch evaluation over the imported dataset diverges from the direct run:" >&2
    diff "$tmp/direct.txt" "$tmp/replayed.txt" >&2 || true
    exit 1
fi

"$go" run ./cmd/churnlab -scale small -seed 7 -stream -window 14 -quiet >"$tmp/direct-stream.txt"
"$go" run ./cmd/churnlab -input "$tmp/ds.jsonl.gz" -stream -window 14 -quiet >"$tmp/replayed-stream.txt"
if ! cmp -s "$tmp/direct-stream.txt" "$tmp/replayed-stream.txt"; then
    echo "dataset-check: streaming timeline over the imported dataset diverges from the direct replay:" >&2
    diff "$tmp/direct-stream.txt" "$tmp/replayed-stream.txt" >&2 || true
    exit 1
fi

echo "dataset-check: export/import round trip byte-identical (batch + streaming)" >&2
