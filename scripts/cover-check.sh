# Per-package coverage gate. Runs the full suite once with -cover and
# fails if any package drops below its floor:
#
#   churntomo (root)        >= 80%
#   internal/* packages     >= 75%
#   cmd/*, examples/*       exempt — binaries; their CLI surfaces are
#                           exercised by scripts/check-dataset-cli.sh and
#                           the scenario gate, not by unit coverage
#
# An internal package with no test files at all also fails: a new
# package must arrive with tests. Floors are deliberately a few points
# below the current baseline (see the Makefile comment) so routine
# refactors don't trip the gate while real coverage rot does.
set -eu

GO="${GO:-go}"

out="$("$GO" test -count 1 -cover ./... 2>&1)" || {
	printf '%s\n' "$out"
	exit 1
}
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
function floor(pkg) {
	if (pkg ~ /\/cmd\// || pkg ~ /\/examples\//) return -1
	if (pkg == "churntomo") return 80
	return 75
}
/coverage:/ {
	pkg = ($1 == "ok") ? $2 : $1
	for (i = 1; i <= NF; i++)
		if ($i == "coverage:") { pct = $(i + 1); sub(/%$/, "", pct) }
	f = floor(pkg)
	if (f < 0) next
	if ($1 != "ok") {
		printf "cover-check: %s has no test files\n", pkg
		bad = 1
		next
	}
	if (pct + 0 < f) {
		printf "cover-check: %s at %s%% is below its %d%% floor\n", pkg, pct, f
		bad = 1
	}
	seen++
}
END {
	if (seen == 0) { print "cover-check: no coverage lines parsed"; exit 1 }
	if (bad) exit 1
	printf "cover-check: %d packages at or above their floors\n", seen
}'
