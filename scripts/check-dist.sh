#!/bin/sh
# check-dist.sh: asserts the distributed runner's determinism contract at
# the CLI layer: `churnlab -procs N` must print stdout byte-identical to
# the in-process run — for a matrix sweep (cells as jobs) and for a batch
# run (measurement-day ranges as jobs) — at more than one worker count.
# The in-test twin is TestDistributedMatchesInProcess; this script pins
# the same property end to end through the rendered reports. Run from the
# repo root; `make check-dist` (part of `make ci`) wires it in.
set -eu
go=${GO:-go}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# A real binary, not `go run`: -procs re-executes its own binary as the
# workers (os.Executable), and the check should exercise exactly the
# artifact a user runs.
"$go" build -o "$tmp/churnlab" ./cmd/churnlab

"$tmp/churnlab" -scale small -seed 5 -matrix 3 -quiet >"$tmp/matrix-inproc.txt"
for procs in 2 4; do
    "$tmp/churnlab" -scale small -seed 5 -matrix 3 -procs "$procs" -quiet >"$tmp/matrix-procs$procs.txt"
    if ! cmp -s "$tmp/matrix-inproc.txt" "$tmp/matrix-procs$procs.txt"; then
        echo "check-dist: matrix output at -procs $procs diverges from the in-process run:" >&2
        diff "$tmp/matrix-inproc.txt" "$tmp/matrix-procs$procs.txt" >&2 || true
        exit 1
    fi
done

"$tmp/churnlab" -scale small -seed 5 -quiet >"$tmp/batch-inproc.txt"
"$tmp/churnlab" -scale small -seed 5 -procs 2 -quiet >"$tmp/batch-procs2.txt"
if ! cmp -s "$tmp/batch-inproc.txt" "$tmp/batch-procs2.txt"; then
    echo "check-dist: batch output at -procs 2 diverges from the in-process run:" >&2
    diff "$tmp/batch-inproc.txt" "$tmp/batch-procs2.txt" >&2 || true
    exit 1
fi

echo "check-dist: distributed output byte-identical to in-process (matrix -procs 2/4, batch -procs 2)" >&2
