#!/bin/sh
# bench-scaling.sh: measure how the distributed matrix runner scales with
# worker processes and render the speedup curve as JSON to the file named
# by $1 (default BENCH_SCALING.json). Runs BenchmarkEngine_MatrixDistributed
# min-of-N (the same discipline as bench-json.sh) and reports, per worker
# count, ns/op and the speedup relative to the in-process baseline.
#
# Interpreting the curve: on a single-core host every point sits near 1.0x
# (the processes time-share one CPU and the procs=1 point prices the
# envelope/IPC overhead); the >=2x-at-4-procs expectation only applies on
# a host with >= 4 real cores. The raw series also lands in the per-PR
# min-of-N suite via `make bench-json`.
#
# Output shape:
#   {"benchmark": "BenchmarkEngine_MatrixDistributed", "cells": 4,
#    "series": [{"name": "inprocess", "procs": 0, "ns_per_op": ..., "speedup": 1.0}, ...]}
set -eu
out=${1:-BENCH_SCALING.json}
go=${GO:-go}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$go" test -run '^$' -bench 'BenchmarkEngine_MatrixDistributed' \
	-benchtime "${BENCHTIME:-3x}" -count "${BENCHCOUNT:-3}" . >"$tmp"

awk '
/^BenchmarkEngine_MatrixDistributed\// {
    # BenchmarkEngine_MatrixDistributed/procs=4-8  ->  variant "procs=4"
    split($1, path, "/")
    variant = path[2]
    sub(/-[0-9]+$/, "", variant)
    ns = $3 + 0
    if (!(variant in best) || ns < best[variant]) best[variant] = ns
    if (!(variant in seen)) { seen[variant] = 1; order[n++] = variant }
}
END {
    if (!("inprocess" in best)) {
        print "bench-scaling: no in-process baseline in the benchmark output" > "/dev/stderr"
        exit 1
    }
    base = best["inprocess"]
    printf("{\"benchmark\": \"BenchmarkEngine_MatrixDistributed\", \"cells\": 4, \"series\": [\n")
    for (i = 0; i < n; i++) {
        v = order[i]
        procs = 0
        if (v ~ /^procs=/) { procs = substr(v, 7) + 0 }
        printf("  {\"name\": \"%s\", \"procs\": %d, \"ns_per_op\": %s, \"speedup\": %.3f}",
               v, procs, best[v], base / best[v])
        if (i < n - 1) printf(",")
        printf("\n")
        printf("bench-scaling: %-10s %12.0f ns/op  %.2fx\n", v, best[v], base / best[v]) > "/dev/stderr"
    }
    printf("]}\n")
}
' "$tmp" >"$out"

echo "bench-scaling: wrote speedup curve (min of ${BENCHCOUNT:-3} runs) to $out" >&2
