#!/bin/sh
# check-docs.sh: asserts every internal/ package carries its package
# documentation in a doc.go file opening with the conventional
# "// Package <name>" comment — the layout ARCHITECTURE.md points readers
# at. Run from the repo root; `make docs` wires it into CI.
set -eu
fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if [ ! -f "${dir}doc.go" ]; then
        echo "missing ${dir}doc.go" >&2
        fail=1
        continue
    fi
    if ! grep -q "^// Package $pkg " "${dir}doc.go"; then
        echo "${dir}doc.go lacks a '// Package $pkg ...' doc comment" >&2
        fail=1
    fi
done
exit $fail
