#!/bin/sh
# check-lint-fixtures.sh: the analyzer suite's own quality gate. Runs
# the lint package and churnvet CLI tests — the fixture modules under
# internal/lint/testdata/src (firing + suppressed case per analyzer),
# the CFG edge-case tests, TestRepoClean, and the CLI surface — and
# holds their coverage to floors deliberately above the repo-wide
# cover gate (internal >= 75%): an analyzer is itself a test oracle,
# so untested analyzer code is a silent hole in every other gate.
#
#   internal/lint  >= 90%   (baseline when this gate landed: 94.0%)
#   cmd/churnvet   >= 85%   (baseline: 89.0%; covered here despite the
#                            cmd/ exemption in the general gate)
set -eu

GO="${GO:-go}"

out="$("$GO" test -count 1 -cover ./internal/lint ./cmd/churnvet 2>&1)" || {
	printf '%s\n' "$out"
	exit 1
}
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
function floor(pkg) {
	if (pkg == "churntomo/internal/lint") return 90
	if (pkg == "churntomo/cmd/churnvet") return 85
	return -1
}
/coverage:/ {
	pkg = $2
	for (i = 1; i <= NF; i++)
		if ($i == "coverage:") { pct = $(i + 1); sub(/%$/, "", pct) }
	f = floor(pkg)
	if (f < 0) next
	seen[pkg] = 1
	if (pct + 0 < f) {
		printf "lint-fixtures: %s coverage %.1f%% is below its %d%% floor\n", pkg, pct, f
		bad = 1
	}
}
END {
	if (!seen["churntomo/internal/lint"] || !seen["churntomo/cmd/churnvet"]) {
		print "lint-fixtures: missing coverage line for internal/lint or cmd/churnvet"
		bad = 1
	}
	exit bad
}'
