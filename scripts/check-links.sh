#!/bin/sh
# check-links.sh: markdown link check. Every relative link in the repo's
# *.md files must resolve to an existing file or directory (external
# http(s)/mailto links and pure anchors are skipped; optional markdown
# titles after the target are ignored). Run from the repo root; `make docs`
# wires it into CI.
set -eu
broken=$(
    find . -name '*.md' -not -path './.git/*' | while IFS= read -r md; do
        dir=$(dirname "$md")
        grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//' |
            while IFS= read -r link; do
                [ -z "$link" ] && continue
                case "$link" in
                http://* | https://* | mailto:* | \#*) continue ;;
                esac
                target=${link%%#*}  # drop anchor
                target=${target%% *} # drop optional "title"
                [ -z "$target" ] && continue
                [ -e "$dir/$target" ] || echo "$md: broken link: $link"
            done || true
    done
)
if [ -n "$broken" ]; then
    printf '%s\n' "$broken" >&2
    exit 1
fi
