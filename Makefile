# Development and CI entry points. `make ci` is the gate: build, the full
# test suite under the race detector, the docs checks (vet + markdown link
# check + per-package doc.go assertion), and a one-iteration benchmark
# smoke so the paper-artifact benchmarks can't rot.

GO ?= go

.PHONY: all ci vet build test race bench docs fuzz clean

all: ci

ci: build race docs bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Documentation gate: every *.md relative link resolves, every internal
# package documents itself in doc.go, and vet is clean.
docs: vet
	sh scripts/check-links.sh
	sh scripts/check-docs.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches compile/runtime rot without
# paying for a real measurement run.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Short fuzz pass over the DIMACS parser; extend -fuzztime for real hunts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseDIMACS -fuzztime 30s ./internal/sat

clean:
	$(GO) clean ./...
