# Development and CI entry points. `make ci` is the gate: vet, build, the
# full test suite under the race detector, and a one-iteration benchmark
# smoke so the paper-artifact benchmarks can't rot.

GO ?= go

.PHONY: all ci vet build test race bench fuzz clean

all: ci

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches compile/runtime rot without
# paying for a real measurement run.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Short fuzz pass over the DIMACS parser; extend -fuzztime for real hunts.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseDIMACS -fuzztime 30s ./internal/sat

clean:
	$(GO) clean ./...
