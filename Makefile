# Development and CI entry points. `make ci` is the gate: build, the full
# test suite under the race detector, the docs checks (vet + markdown link
# check + per-package doc.go assertion + the public-API gate), the scenario
# gate (every registered preset runs end to end at smoke scale), and a
# one-iteration benchmark smoke so the paper-artifact benchmarks can't rot.

GO ?= go

# Per-target fuzzing budget for `make fuzz`; raise for real hunts.
FUZZTIME ?= 30s

.PHONY: all ci vet build test race bench bench-json bench-scaling profile docs lint lint-fixtures api-check scenario-check dataset-check check-dist cover fuzz fuzz-smoke clean

all: ci

ci: build lint lint-fixtures race docs scenario-check dataset-check check-dist cover fuzz-smoke bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Invariant gate: churnvet (cmd/churnvet, internal/lint) type-checks the
# whole module and runs all ten analyzers — the syntactic tier (no
# ambient nondeterminism in deterministic packages, named unique RNG
# stream constants, no map-order leaks into output, `go` only in the
# sanctioned concurrency packages, a sealed public-API boundary) and the
# flow-sensitive CFG tier (ctx plumbed to every blocking op and no fresh
# context roots, locks released on every path and never held across a
# blocking op or copied by value, no discarded errors / ==-compared
# sentinels / %v-wrapped chains, every sanctioned `go` joined before its
# spawner returns). Suppressions need a written reason (//churnvet:ok
# <analyzer> -- <reason>); malformed ones are themselves findings, and
# `churnvet -audit` lists the whole waiver inventory.
lint:
	$(GO) run ./cmd/churnvet ./...

# The analyzer suite's own gate: fixture + CFG + CLI tests with coverage
# floors above the repo-wide cover gate (see scripts/check-lint-fixtures.sh).
lint-fixtures:
	sh scripts/check-lint-fixtures.sh

# Public-API gate: the examples must build as external consumers would and
# must not import churntomo/internal packages — the Result/Event surface
# has to be self-sufficient.
api-check:
	GOFLAGS=-mod=mod $(GO) build ./examples/...
	sh scripts/check-api.sh

# Documentation gate: every *.md relative link resolves, every internal
# package documents itself in doc.go, the examples pass the public-API
# check, and vet is clean.
docs: vet api-check
	sh scripts/check-links.sh
	sh scripts/check-docs.sh

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scenario gate: the preset catalog is intact, every registered preset
# runs the full pipeline end to end at smoke scale with deterministic
# output, and the catalog tooling stays wired.
scenario-check:
	$(GO) test -count 1 -run 'TestScenarioCatalog|TestScenarioPresetsSmoke|TestScenarioDeterminism|TestScenarioBaselineMatchesDefault' .
	$(GO) run ./cmd/genlab -list >/dev/null

# Dataset gate: the on-disk format keeps round-tripping — the codec's
# golden v1 file still decodes and re-encodes byte-identically, an
# export→import→localize round trip produces identifications
# byte-identical to the direct run in batch and streaming modes, and the
# genlab -export → churnlab -input CLI workflow stays wired end to end
# (smoke scale, full evaluation diffed against the direct run).
dataset-check:
	$(GO) test -count 1 -run 'TestGoldenV1|TestEncodeDecodeRoundTrip' ./internal/dataset
	$(GO) test -count 1 -run 'TestDatasetRoundTripIdentifications|TestDatasetRoundTripStreaming|TestInMemoryDatasetSource' .
	sh scripts/check-dataset-cli.sh

# Distributed gate: `churnlab -procs N` prints stdout byte-identical to
# the in-process run — matrix sweeps (cells as jobs, -procs 2 and 4) and
# batch runs (day ranges as jobs) — so multi-process execution can never
# change a result, only where it is computed.
check-dist:
	sh scripts/check-dist.sh

# Coverage gate: per-package floors enforced by scripts/cover-check.sh —
# internal packages >= 75%, the root package >= 80%, cmd/ binaries exempt
# (their CLI surfaces are smoke-tested by the check scripts), and a new
# internal package with no tests fails outright. Baseline when the gate
# landed (PR 7): root 84.2%, lowest internal httpsim 79.1%, median ~95%.
cover:
	sh scripts/cover-check.sh

# One iteration of every benchmark: catches compile/runtime rot without
# paying for a real measurement run.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Root benchmarks with -benchmem, rendered as JSON so the performance
# trajectory has machine-readable datapoints (BENCH_PR9.json is this PR's:
# it adds the Engine_MatrixDistributed multi-process series to PR7's
# min-of-N suite).
bench-json:
	sh scripts/bench-json.sh BENCH_PR9.json

# Speedup curve of the distributed matrix runner (ns/op and speedup vs
# the in-process baseline per worker count), min-of-N like bench-json.
# On a single-core host the curve is ~flat by construction; the >=2x at
# 4 procs expectation needs >= 4 real cores.
bench-scaling:
	sh scripts/bench-scaling.sh BENCH_SCALING.json

# CPU and allocation profiles for the three hot kernels the PR6 pass
# optimized, written under profiles/ as pprof protos plus human-readable
# -top digests. Compare against profiles/before.* to see the shift.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkEngine_MeasureSerial|BenchmarkKernel_CNFBuild|BenchmarkDatasetEncodeDecode' \
		-benchtime 3x -cpuprofile profiles/after.cpu.pb.gz -memprofile profiles/after.mem.pb.gz .
	$(GO) tool pprof -top -nodecount 25 churntomo.test profiles/after.cpu.pb.gz >profiles/after.cpu.top.txt
	$(GO) tool pprof -top -nodecount 25 -sample_index=alloc_objects churntomo.test profiles/after.mem.pb.gz >profiles/after.mem.top.txt
	rm -f churntomo.test
	@echo "profile: wrote profiles/after.{cpu,mem}.pb.gz and -top digests" >&2

# Short fuzz pass over every fuzz target — the DIMACS parser, the dataset
# codec round trip, and the evaluation kernel — each with the FUZZTIME
# budget. `make fuzz FUZZTIME=5m` for a real hunt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseDIMACS -fuzztime $(FUZZTIME) ./internal/sat
	$(GO) test -run '^$$' -fuzz FuzzDatasetRoundTrip -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run '^$$' -fuzz FuzzEvaluate -fuzztime $(FUZZTIME) .

# Seed-corpus-only fuzz smoke for CI: replays every fuzz target's seed
# corpus as ordinary tests, so a target that rots fails fast without
# paying for wall-clock fuzzing.
fuzz-smoke:
	$(GO) test -count 1 -run '^Fuzz' ./internal/sat ./internal/dataset .

clean:
	$(GO) clean ./...
