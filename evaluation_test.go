package churntomo

// Unit and fuzz coverage for the public evaluation surface. The
// end-to-end behavior is pinned by the golden suite; these tests cover
// the set arithmetic on hand-built Results, including the adversarial
// shapes a real run never produces.

import (
	"encoding/binary"
	"testing"
)

// fakeResult builds a minimal Result naming the given ASes.
func fakeResult(identified ...ASN) *Result {
	r := &Result{}
	for _, as := range identified {
		r.Censors = append(r.Censors, Censor{ASN: as})
	}
	return r
}

func TestEvaluateNilSafety(t *testing.T) {
	if Evaluate(nil, &GroundTruth{}) != nil {
		t.Error("Evaluate(nil result) != nil")
	}
	if Evaluate(&Result{}, nil) != nil {
		t.Error("Evaluate(nil truth) != nil")
	}
	var r *Result
	if r.Truth() != nil {
		t.Error("nil Result.Truth() != nil")
	}
	if r.ChokePoints(5) != nil {
		t.Error("nil Result.ChokePoints() != nil")
	}
}

func TestEvaluateHandBuilt(t *testing.T) {
	r := fakeResult(10, 40)
	truth := &GroundTruth{
		Censors:        []ASN{10, 20},
		Exercised:      []ASN{10},
		OnCensoredPath: []ASN{10, 40},
	}
	ev := Evaluate(r, truth)
	if ev == nil {
		t.Fatal("Evaluate returned nil")
	}
	if ev.TP != 1 || ev.FP != 1 || ev.Missed != 1 {
		t.Fatalf("TP/FP/Missed = %d/%d/%d, want 1/1/1", ev.TP, ev.FP, ev.Missed)
	}
	if ev.Precision != 0.5 || ev.Recall != 0.5 {
		t.Errorf("P/R = %v/%v, want 0.5/0.5", ev.Precision, ev.Recall)
	}
	if ev.ExercisedRecall != 1 {
		t.Errorf("exercised recall = %v, want 1", ev.ExercisedRecall)
	}
	if ev.LeakageFPs != 1 || ev.LeakageRate != 1 {
		t.Errorf("leakage = %d (%v), want 1 (1.0): the only FP sits on a censored path",
			ev.LeakageFPs, ev.LeakageRate)
	}
	if ev.TrueCensors != 2 || ev.ExercisedCensors != 1 || ev.IdentifiedASes != 2 {
		t.Errorf("set sizes = %d/%d/%d, want 2/1/2",
			ev.TrueCensors, ev.ExercisedCensors, ev.IdentifiedASes)
	}
	if len(ev.MissedCensors) != 1 || ev.MissedCensors[0] != 20 {
		t.Errorf("missed = %v, want [20]", ev.MissedCensors)
	}
}

// asnsOf decodes a fuzz byte string into ASNs, 4 bytes each.
func asnsOf(raw []byte) []ASN {
	out := make([]ASN, 0, len(raw)/4)
	for i := 0; i+4 <= len(raw); i += 4 {
		out = append(out, ASN(binary.LittleEndian.Uint32(raw[i:])))
	}
	return out
}

// FuzzEvaluate hammers the scoring path with adversarial verdict/truth
// pairs: empty truth, censors absent from any topology, duplicate ASNs,
// overlapping and disjoint sets. The invariants: never panic, every rate
// in [0, 1], and the count decomposition stays consistent.
func FuzzEvaluate(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{}, []byte{})                     // all empty
	f.Add([]byte{1, 0, 0, 0}, []byte{}, []byte{}, []byte{})           // verdict, empty truth
	f.Add([]byte{}, []byte{2, 0, 0, 0}, []byte{2, 0, 0, 0}, []byte{}) // truth, empty verdict
	f.Add(                                                            // duplicates everywhere, exercised AS not in truth
		[]byte{5, 0, 0, 0, 5, 0, 0, 0, 9, 0, 0, 0},
		[]byte{5, 0, 0, 0, 5, 0, 0, 0},
		[]byte{7, 0, 0, 0, 5, 0, 0, 0},
		[]byte{9, 0, 0, 0, 9, 0, 0, 0})
	f.Add( // identified censor absent from the truth or any path
		[]byte{0xff, 0xff, 0xff, 0xff},
		[]byte{1, 0, 0, 0},
		[]byte{1, 0, 0, 0},
		[]byte{3, 0, 0, 0})

	f.Fuzz(func(t *testing.T, identified, truth, exercised, onPath []byte) {
		r := fakeResult(asnsOf(identified)...)
		gt := &GroundTruth{
			Censors:        asnsOf(truth),
			Exercised:      asnsOf(exercised),
			OnCensoredPath: asnsOf(onPath),
		}
		ev := Evaluate(r, gt)
		if ev == nil {
			t.Fatal("Evaluate returned nil for non-nil inputs")
		}
		for name, v := range map[string]float64{
			"precision": ev.Precision, "recall": ev.Recall, "f1": ev.F1,
			"exercisedRecall": ev.ExercisedRecall, "leakageRate": ev.LeakageRate,
			"candidateReduction": ev.CandidateReduction,
		} {
			if v < 0 || v > 1 || v != v {
				t.Errorf("%s = %v outside [0, 1]", name, v)
			}
		}
		if ev.TP < 0 || ev.FP < 0 || ev.Missed < 0 || ev.LeakageFPs < 0 {
			t.Errorf("negative counts: %+v", ev)
		}
		if ev.TP+ev.FP != ev.IdentifiedASes {
			t.Errorf("TP+FP = %d, IdentifiedASes = %d", ev.TP+ev.FP, ev.IdentifiedASes)
		}
		if ev.TP+ev.Missed != ev.TrueCensors {
			t.Errorf("TP+Missed = %d, TrueCensors = %d", ev.TP+ev.Missed, ev.TrueCensors)
		}
		if ev.LeakageFPs > ev.FP {
			t.Errorf("LeakageFPs %d > FP %d", ev.LeakageFPs, ev.FP)
		}
		if len(ev.FalsePositives) != ev.FP || len(ev.MissedCensors) != ev.Missed {
			t.Errorf("named errors disagree with counts: %d/%d vs %d/%d",
				len(ev.FalsePositives), len(ev.MissedCensors), ev.FP, ev.Missed)
		}
	})
}
