// Package churntomo reproduces "A Churn for the Better: Localizing
// Censorship using Network-level Path Churn and Network Tomography"
// (Cho et al., CoNExT 2017) as a runnable system.
//
// The package ties together the full stack: a synthetic AS-level Internet
// with Gao–Rexford routing and BGP churn, an ICLab-style measurement
// platform (packet-level DNS/HTTP censorship tests, traceroutes, anomaly
// detectors), and the paper's boolean-network-tomography pipeline (per
// URL/time-slice/anomaly CNFs solved with a built-in SAT solver, candidate
// elimination, censor identification and leakage analysis).
//
// Typical use:
//
//	exp, err := churntomo.New(churntomo.WithScale(churntomo.ScaleSmall))
//	if err != nil { ... }
//	res, err := exp.Run(ctx)
//	if err != nil { ... }
//	for _, c := range res.Censors { ... }
//
// New constructs an Experiment from functional options; Experiment.Run
// executes batch, streaming (WithWindow/WithStride) or matrix
// (WithSeedSweep/WithScaleSweep/WithConfigs) runs through one cancelable
// code path, reporting progress as typed Events to registered observers
// and returning a Result expressed entirely in exported types.
//
// Where measurements come from is decoupled from how they are localized:
// a Source (see WithSource/WithInput) supplies day-ordered Measurement
// batches plus world metadata. The default ScenarioSource synthesizes
// them from the configured scenario; FileSource replays a dataset
// exported by Result.Export (genlab -export / churnlab -input at the
// CLI); external ingesters implement Source to analyze real recorded
// corpora through the same pipeline.
//
// Every run is deterministic for a given option set, at any WithWorkers
// setting: measurement days, CNF construction and solving are sharded
// across worker pools whose output is bit-identical to serial execution.
// Replaying an exported dataset reproduces the direct run's
// identifications byte for byte, in batch and streaming modes.
//
// The pre-Experiment entry points (Run, Runner.RunMatrix,
// Runner.StreamSweep) remain as deprecated shims over the same code path.
package churntomo

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/ipasmap"
	"churntomo/internal/leakage"
	"churntomo/internal/routing"
	"churntomo/internal/scenario"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// Config scales a full experiment. The zero-value rule: a zero field
// means "use the default" — zero fields take DefaultConfig's values (and
// Seed 0 takes the default seed 1). Construction-time options therefore
// reject arguments equal to the zero value instead of silently renaming
// them (WithSeed(0) errors rather than running under seed 1).
type Config struct {
	Seed uint64

	// Scenario names the world-construction preset from the scenario
	// registry (see Scenarios for the catalog); "" means ScenarioBaseline,
	// the paper's original pipeline byte for byte. WithScenarioSpec
	// overrides the name lookup with an explicit composed spec.
	Scenario string

	// Workers bounds the per-stage parallelism: measurement days are
	// sharded across this many goroutines, and CNF grouping,
	// materialization and solving use the same pool size. 0 uses
	// GOMAXPROCS, 1 forces fully serial execution. Results are identical
	// at every setting — parallelism never changes the output.
	Workers int

	// Topology scale.
	ASes      int
	Countries int

	// Platform scale.
	Vantages      int
	URLs          int
	Days          int
	URLsPerDay    int
	RepeatsPerDay int

	// Start anchors the measurement period; the zero value means
	// 2016-05-01, matching the paper's window.
	Start time.Time

	// Progress, when non-nil, receives one line per pipeline stage.
	//
	// Deprecated: register WithObserver(TextObserver(w)) on an Experiment
	// instead; WithConfig converts a non-nil Progress automatically.
	Progress io.Writer
}

// DefaultConfig is a mid-scale year-long run (minutes of CPU).
func DefaultConfig() Config {
	return Config{
		Seed: 1, ASes: 400, Countries: 30,
		Vantages: 40, URLs: 80, Days: 366, URLsPerDay: 20, RepeatsPerDay: 2,
	}
}

// SmallConfig is a seconds-scale run for tests and examples.
func SmallConfig() Config {
	return Config{
		Seed: 1, ASes: 250, Countries: 25,
		Vantages: 16, URLs: 24, Days: 60, URLsPerDay: 8, RepeatsPerDay: 2,
	}
}

// PaperScaleConfig approaches the paper's dataset dimensions (539 vantage
// ASes, 774 URLs, a year of measurements). Expect a long run.
func PaperScaleConfig() Config {
	return Config{
		Seed: 1, ASes: 1200, Countries: 42,
		Vantages: 150, URLs: 250, Days: 366, URLsPerDay: 60, RepeatsPerDay: 2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Scenario == "" {
		c.Scenario = scenario.DefaultName
	}
	if c.ASes == 0 {
		c.ASes = d.ASes
	}
	if c.Countries == 0 {
		c.Countries = d.Countries
	}
	if c.Vantages == 0 {
		c.Vantages = d.Vantages
	}
	if c.URLs == 0 {
		c.URLs = d.URLs
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.URLsPerDay == 0 {
		c.URLsPerDay = d.URLsPerDay
	}
	if c.RepeatsPerDay == 0 {
		c.RepeatsPerDay = d.RepeatsPerDay
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	}
}

// identifyMinCNFs is the corroboration threshold for naming a censor: an
// AS must be the unique solution of at least this many CNFs. See
// tomo.IdentifyCensors.
const identifyMinCNFs = 8

// Pipeline holds every artifact of one end-to-end run.
//
// Pipeline predates the Experiment API and deliberately exposes internal
// artifact types; Result is the internal-free replacement, and the
// churnvet suppressions below are removed with the deprecated shims.
type Pipeline struct {
	Config Config

	Graph    *topology.Graph   //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Timeline *routing.Timeline //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Oracle   *routing.Oracle   //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Censors  *censor.Registry  //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	DB       *ipasmap.DB       //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Scenario *iclab.Scenario   //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Dataset  *iclab.Dataset    //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form

	Instances  []*tomo.Instance //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Outcomes   []tomo.Outcome   //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
	Identified map[topology.ASN]*tomo.IdentifiedCensor
	Leakage    *leakage.Analysis //churnvet:ok internalimport -- deprecated pre-Experiment surface; Result is the exported form
}

// Run executes the full pipeline: generate substrate, measure, build CNFs,
// solve, identify censors, analyze leakage.
//
// Deprecated: use New(WithConfig(cfg)) and Experiment.Run(ctx), which add
// cancellation, typed progress events and a Result free of internal types.
// Run remains a thin shim over the same code path; for matching options
// the identifications are byte-identical.
func Run(cfg Config) (*Pipeline, error) {
	e, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	cell, err := e.runCell(context.Background(), e.base, -1)
	if err != nil {
		return nil, err
	}
	return cell.pipe, nil
}

// Prepare builds the substrate (topology, churn, censors, mapping DB,
// scenario) without running measurements — useful when a caller wants to
// inspect or tweak the scenario first. Progress lines go to cfg.Progress.
func Prepare(cfg Config) (*Pipeline, error) {
	emit := func(Event) {}
	if cfg.Progress != nil {
		obs := TextObserver(cfg.Progress)
		emit = func(ev Event) { obs(ev) }
	}
	return prepareCtx(context.Background(), cfg, emit)
}

// resolveScenario maps a preset name ("" = the paper baseline) to its
// registered spec.
func resolveScenario(name string) (scenario.Spec, error) {
	if name == "" {
		name = scenario.DefaultName
	}
	spec, ok := scenario.Preset(name)
	if !ok {
		return scenario.Spec{}, fmt.Errorf("churntomo: unknown scenario %q (known: %s)",
			name, strings.Join(scenario.SortedNames(), ", "))
	}
	return spec, nil
}

// buildStageOf maps a scenario build stage onto the public event stage.
func buildStageOf(s scenario.Stage) Stage {
	switch s {
	case scenario.StageTopology:
		return StageTopology
	case scenario.StageTimeline:
		return StageTimeline
	case scenario.StageCensors:
		return StageCensors
	case scenario.StageIPASMap:
		return StageIPASMap
	default:
		return StageScenario
	}
}

// prepareCtx is the substrate builder behind Prepare and the deprecated
// shims: it resolves cfg.Scenario against the preset registry and builds
// through prepareSpecCtx.
func prepareCtx(ctx context.Context, cfg Config, emit func(Event)) (*Pipeline, error) {
	spec, err := resolveScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	return prepareSpecCtx(ctx, cfg, spec, emit)
}

// prepareSpecCtx builds the substrate behind every Experiment cell by
// driving scenario.Build with the resolved spec: topology, churn timeline,
// censors, IP-to-AS history, measurement scenario. ctx is checked before
// each stage; emit receives one Event per stage.
func prepareSpecCtx(ctx context.Context, cfg Config, spec scenario.Spec, emit func(Event)) (*Pipeline, error) {
	cfg.fillDefaults()
	p := &Pipeline{Config: cfg}
	params := scenario.Params{
		Seed: cfg.Seed,
		ASes: cfg.ASes, Countries: cfg.Countries,
		Vantages: cfg.Vantages, URLs: cfg.URLs,
		Start: cfg.Start, End: cfg.Start.AddDate(0, 0, cfg.Days),
	}
	onStage := func(s scenario.Stage) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := newEvent(buildStageOf(s))
		ev.Stats.Seed = cfg.Seed
		switch s {
		case scenario.StageTopology:
			ev.Stats.ASes, ev.Stats.Countries = cfg.ASes, cfg.Countries
		case scenario.StageTimeline:
			ev.Stats.Days = cfg.Days
		case scenario.StagePlatform:
			ev.Stats.Vantages, ev.Stats.URLs = cfg.Vantages, cfg.URLs
		}
		emit(ev)
		return nil
	}
	w, err := scenario.Build(spec, params, onStage)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // cancellation, already unwrapped
		}
		return nil, fmt.Errorf("churntomo: %w", err)
	}
	p.Graph, p.Timeline, p.Oracle = w.Graph, w.Timeline, w.Oracle
	p.Censors, p.DB, p.Scenario = w.Censors, w.DB, w.Platform
	return p, nil
}

// platformConfig derives the measurement platform's configuration. Every
// execution mode (batch Measure, streaming StreamSweep, benchmarks) must
// measure through this one derivation — the replay-equals-batch guarantee
// rests on them agreeing on the seed offset and schedule knobs.
func (c *Config) platformConfig() iclab.PlatformConfig {
	return iclab.PlatformConfig{
		Seed:          c.Seed + 5,
		Workers:       c.Workers,
		URLsPerDay:    c.URLsPerDay,
		RepeatsPerDay: c.RepeatsPerDay,
	}
}

// MeasureCtx runs the measurement platform, populating Dataset. It
// returns an error — rather than panicking like the deprecated Measure —
// when the pipeline carries no scenario (Prepare has not run, or the
// pipeline was reconstructed from a dataset whose records are already
// measured), and honors ctx cancellation at day-shard granularity.
func (p *Pipeline) MeasureCtx(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Scenario == nil {
		return fmt.Errorf("churntomo: Measure before Prepare: pipeline carries no scenario")
	}
	if p.Config.Progress != nil {
		fmt.Fprintln(p.Config.Progress, "running measurement platform")
	}
	ds, err := iclab.RunCtx(ctx, p.Scenario, p.Config.platformConfig())
	if err != nil {
		return err
	}
	p.Dataset = ds
	return nil
}

// Measure runs the measurement platform, populating Dataset.
//
// Deprecated: use MeasureCtx, which returns an error instead of
// panicking on a pipeline without a scenario and supports cancellation.
// The panic on a scenario-less pipeline is pinned behavior.
func (p *Pipeline) Measure() {
	if p.Scenario == nil {
		panic("churntomo: Measure before Prepare")
	}
	if err := p.MeasureCtx(context.Background()); err != nil {
		panic(err) // unreachable: RunCtx only fails on ctx cancellation
	}
}

// LocalizeCtx builds and solves the tomography CNFs and derives censors
// and leakage. It returns an error — rather than panicking like the
// deprecated Localize — when no Dataset has been measured or adopted, and
// honors ctx cancellation inside the grouped build and the solve loop.
func (p *Pipeline) LocalizeCtx(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Dataset == nil {
		return fmt.Errorf("churntomo: Localize before Measure: pipeline carries no dataset")
	}
	if p.Config.Progress != nil {
		fmt.Fprintln(p.Config.Progress, "building and solving CNFs")
	}
	insts, outcomes, err := tomo.BuildAndSolveCtx(ctx, p.Dataset.Records, tomo.BuildConfig{Workers: p.Config.Workers})
	if err != nil {
		return err
	}
	p.Instances, p.Outcomes = insts, outcomes
	p.Identified = tomo.IdentifyCensors(p.Outcomes, identifyMinCNFs)
	p.Leakage = leakage.Analyze(p.Outcomes, p.Graph)
	return nil
}

// Localize builds and solves the tomography CNFs and derives censors and
// leakage. Requires Measure to have run.
//
// Deprecated: use LocalizeCtx, which returns an error instead of
// panicking on a nil Dataset and supports cancellation. The
// "Localize before Measure" panic is pinned behavior.
func (p *Pipeline) Localize() {
	if p.Dataset == nil {
		panic("churntomo: Localize before Measure")
	}
	if err := p.LocalizeCtx(context.Background()); err != nil {
		panic(err) // unreachable: BuildAndSolveCtx only fails on ctx cancellation
	}
}
