// Package churntomo reproduces "A Churn for the Better: Localizing
// Censorship using Network-level Path Churn and Network Tomography"
// (Cho et al., CoNExT 2017) as a runnable system.
//
// The package ties together the full stack: a synthetic AS-level Internet
// with Gao–Rexford routing and BGP churn, an ICLab-style measurement
// platform (packet-level DNS/HTTP censorship tests, traceroutes, anomaly
// detectors), and the paper's boolean-network-tomography pipeline (per
// URL/time-slice/anomaly CNFs solved with a built-in SAT solver, candidate
// elimination, censor identification and leakage analysis).
//
// Typical use:
//
//	exp, err := churntomo.New(churntomo.WithScale(churntomo.ScaleSmall))
//	if err != nil { ... }
//	res, err := exp.Run(ctx)
//	if err != nil { ... }
//	for _, c := range res.Censors { ... }
//
// New constructs an Experiment from functional options; Experiment.Run
// executes batch, streaming (WithWindow/WithStride) or matrix
// (WithSeedSweep/WithScaleSweep/WithConfigs) runs through one cancelable
// code path, reporting progress as typed Events to registered observers
// and returning a Result expressed entirely in exported types.
//
// Every run is deterministic for a given option set, at any WithWorkers
// setting: measurement days, CNF construction and solving are sharded
// across worker pools whose output is bit-identical to serial execution.
//
// The pre-Experiment entry points (Run, Runner.RunMatrix,
// Runner.StreamSweep) remain as deprecated shims over the same code path.
package churntomo

import (
	"context"
	"fmt"
	"io"
	"time"

	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/ipasmap"
	"churntomo/internal/leakage"
	"churntomo/internal/routing"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// Config scales a full experiment. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	Seed uint64

	// Workers bounds the per-stage parallelism: measurement days are
	// sharded across this many goroutines, and CNF grouping,
	// materialization and solving use the same pool size. 0 uses
	// GOMAXPROCS, 1 forces fully serial execution. Results are identical
	// at every setting — parallelism never changes the output.
	Workers int

	// Topology scale.
	ASes      int
	Countries int

	// Platform scale.
	Vantages      int
	URLs          int
	Days          int
	URLsPerDay    int
	RepeatsPerDay int

	// Start anchors the measurement period; the zero value means
	// 2016-05-01, matching the paper's window.
	Start time.Time

	// Progress, when non-nil, receives one line per pipeline stage.
	//
	// Deprecated: register WithObserver(TextObserver(w)) on an Experiment
	// instead; WithConfig converts a non-nil Progress automatically.
	Progress io.Writer
}

// DefaultConfig is a mid-scale year-long run (minutes of CPU).
func DefaultConfig() Config {
	return Config{
		Seed: 1, ASes: 400, Countries: 30,
		Vantages: 40, URLs: 80, Days: 366, URLsPerDay: 20, RepeatsPerDay: 2,
	}
}

// SmallConfig is a seconds-scale run for tests and examples.
func SmallConfig() Config {
	return Config{
		Seed: 1, ASes: 250, Countries: 25,
		Vantages: 16, URLs: 24, Days: 60, URLsPerDay: 8, RepeatsPerDay: 2,
	}
}

// PaperScaleConfig approaches the paper's dataset dimensions (539 vantage
// ASes, 774 URLs, a year of measurements). Expect a long run.
func PaperScaleConfig() Config {
	return Config{
		Seed: 1, ASes: 1200, Countries: 42,
		Vantages: 150, URLs: 250, Days: 366, URLsPerDay: 60, RepeatsPerDay: 2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ASes == 0 {
		c.ASes = d.ASes
	}
	if c.Countries == 0 {
		c.Countries = d.Countries
	}
	if c.Vantages == 0 {
		c.Vantages = d.Vantages
	}
	if c.URLs == 0 {
		c.URLs = d.URLs
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.URLsPerDay == 0 {
		c.URLsPerDay = d.URLsPerDay
	}
	if c.RepeatsPerDay == 0 {
		c.RepeatsPerDay = d.RepeatsPerDay
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	}
}

// identifyMinCNFs is the corroboration threshold for naming a censor: an
// AS must be the unique solution of at least this many CNFs. See
// tomo.IdentifyCensors.
const identifyMinCNFs = 8

// Pipeline holds every artifact of one end-to-end run.
type Pipeline struct {
	Config Config

	Graph    *topology.Graph
	Timeline *routing.Timeline
	Oracle   *routing.Oracle
	Censors  *censor.Registry
	DB       *ipasmap.DB
	Scenario *iclab.Scenario
	Dataset  *iclab.Dataset

	Instances  []*tomo.Instance
	Outcomes   []tomo.Outcome
	Identified map[topology.ASN]*tomo.IdentifiedCensor
	Leakage    *leakage.Analysis
}

// Run executes the full pipeline: generate substrate, measure, build CNFs,
// solve, identify censors, analyze leakage.
//
// Deprecated: use New(WithConfig(cfg)) and Experiment.Run(ctx), which add
// cancellation, typed progress events and a Result free of internal types.
// Run remains a thin shim over the same code path; for matching options
// the identifications are byte-identical.
func Run(cfg Config) (*Pipeline, error) {
	e, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	cell, err := e.runCell(context.Background(), e.base, -1)
	if err != nil {
		return nil, err
	}
	return cell.pipe, nil
}

// Prepare builds the substrate (topology, churn, censors, mapping DB,
// scenario) without running measurements — useful when a caller wants to
// inspect or tweak the scenario first. Progress lines go to cfg.Progress.
func Prepare(cfg Config) (*Pipeline, error) {
	emit := func(Event) {}
	if cfg.Progress != nil {
		obs := TextObserver(cfg.Progress)
		emit = func(ev Event) { obs(ev) }
	}
	return prepareCtx(context.Background(), cfg, emit)
}

// prepareCtx is the substrate builder behind Prepare and every Experiment
// cell: topology, churn timeline, censors, IP-to-AS history, scenario.
// ctx is checked before each stage; emit receives one Event per stage.
func prepareCtx(ctx context.Context, cfg Config, emit func(Event)) (*Pipeline, error) {
	cfg.fillDefaults()
	end := cfg.Start.AddDate(0, 0, cfg.Days)
	p := &Pipeline{Config: cfg}
	stage := func(s Stage, fill func(*EventStats)) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := newEvent(s)
		ev.Stats.Seed = cfg.Seed
		if fill != nil {
			fill(&ev.Stats)
		}
		emit(ev)
		return nil
	}

	var err error
	if err = stage(StageTopology, func(st *EventStats) {
		st.ASes, st.Countries = cfg.ASes, cfg.Countries
	}); err != nil {
		return nil, err
	}
	p.Graph, err = topology.Generate(topology.GenConfig{
		Seed: cfg.Seed, ASes: cfg.ASes, Countries: cfg.Countries,
	})
	if err != nil {
		return nil, fmt.Errorf("churntomo: topology: %w", err)
	}

	if err = stage(StageTimeline, func(st *EventStats) { st.Days = cfg.Days }); err != nil {
		return nil, err
	}
	p.Timeline, err = routing.GenTimeline(p.Graph, routing.TimelineConfig{
		Seed: cfg.Seed + 1, Start: cfg.Start, End: end,
	})
	if err != nil {
		return nil, fmt.Errorf("churntomo: timeline: %w", err)
	}
	p.Oracle = routing.NewOracle(p.Graph, p.Timeline, 0)

	if err = stage(StageCensors, nil); err != nil {
		return nil, err
	}
	p.Censors, err = censor.Generate(p.Graph, censor.GenConfig{
		Seed: cfg.Seed + 2, Start: cfg.Start, End: end,
	})
	if err != nil {
		return nil, fmt.Errorf("churntomo: censors: %w", err)
	}

	if err = stage(StageIPASMap, nil); err != nil {
		return nil, err
	}
	p.DB, err = ipasmap.Build(p.Graph, ipasmap.BuildConfig{
		Seed: cfg.Seed + 3, Start: cfg.Start, End: end,
	})
	if err != nil {
		return nil, fmt.Errorf("churntomo: ipasmap: %w", err)
	}

	if err = stage(StageScenario, func(st *EventStats) {
		st.Vantages, st.URLs = cfg.Vantages, cfg.URLs
	}); err != nil {
		return nil, err
	}
	p.Scenario, err = iclab.BuildScenario(p.Graph, p.Oracle, p.Censors, p.DB,
		cfg.Start, end, iclab.ScenarioConfig{
			Seed: cfg.Seed + 4, Vantages: cfg.Vantages, URLs: cfg.URLs,
		})
	if err != nil {
		return nil, fmt.Errorf("churntomo: scenario: %w", err)
	}
	return p, nil
}

// platformConfig derives the measurement platform's configuration. Every
// execution mode (batch Measure, streaming StreamSweep, benchmarks) must
// measure through this one derivation — the replay-equals-batch guarantee
// rests on them agreeing on the seed offset and schedule knobs.
func (c *Config) platformConfig() iclab.PlatformConfig {
	return iclab.PlatformConfig{
		Seed:          c.Seed + 5,
		Workers:       c.Workers,
		URLsPerDay:    c.URLsPerDay,
		RepeatsPerDay: c.RepeatsPerDay,
	}
}

// Measure runs the measurement platform, populating Dataset.
func (p *Pipeline) Measure() {
	if p.Config.Progress != nil {
		fmt.Fprintln(p.Config.Progress, "running measurement platform")
	}
	p.Dataset = iclab.Run(p.Scenario, p.Config.platformConfig())
}

// Localize builds and solves the tomography CNFs and derives censors and
// leakage. Requires Measure to have run.
func (p *Pipeline) Localize() {
	if p.Dataset == nil {
		panic("churntomo: Localize before Measure")
	}
	if p.Config.Progress != nil {
		fmt.Fprintln(p.Config.Progress, "building and solving CNFs")
	}
	p.Instances, p.Outcomes = tomo.BuildAndSolve(p.Dataset.Records, tomo.BuildConfig{Workers: p.Config.Workers})
	p.Identified = tomo.IdentifyCensors(p.Outcomes, identifyMinCNFs)
	p.Leakage = leakage.Analyze(p.Outcomes, p.Graph)
}
