package churntomo

// The worker side of distributed execution (see WithDistributed and
// internal/distrib). A coordinator serializes each job as a self-contained
// JSON envelope — a whole matrix cell (Config plus source reference), or a
// day range of a single cell's measurement schedule — and the worker
// process answers with a typed result payload: a condensed cell summary,
// or a format-v1 dataset slice holding the measured day shards. Events the
// cell emits while running are forwarded live as event frames, so the
// coordinator's observers see remote progress as it happens.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"churntomo/internal/dataset"
	"churntomo/internal/distrib"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
)

// workerArg is the magic first argument that turns a churntomo-embedding
// binary into a protocol worker (see MaybeWorker). Deliberately ugly: no
// human-facing flag should ever collide with it.
const workerArg = "__churntomo_worker__"

// Envelope kinds: a whole matrix cell, or a day range of one cell's
// measurement schedule.
const (
	jobKindCell = "cell"
	jobKindDays = "days"
)

// jobEnvelope is one self-contained distributed job. Exactly one source
// reference applies to a cell job: none (synthesize from Config.Scenario),
// SourcePath (replay a dataset file), or SourceData (an inline format-v1
// dataset). Day jobs carry only Config and the [DayLo, DayHi) range.
type jobEnvelope struct {
	Kind    string `json:"kind"`
	Config  Config `json:"config"`
	MinCNFs int    `json:"min_cnfs,omitempty"`
	// MemoryMB is the per-worker soft memory budget hint, applied via the
	// runtime's memory limit; 0 leaves the runtime default.
	MemoryMB int `json:"memory_mb,omitempty"`

	SourcePath string `json:"source_path,omitempty"`
	SourceData []byte `json:"source_data,omitempty"`

	DayLo int `json:"day_lo,omitempty"`
	DayHi int `json:"day_hi,omitempty"`
}

// wireEvent is an Event crossing the pipe; the coordinator re-tags Cell
// with the job's cell index on receipt.
type wireEvent struct {
	Stage  Stage      `json:"stage"`
	Day    int        `json:"day"`
	Window int        `json:"window"`
	Source string     `json:"source,omitempty"`
	Err    string     `json:"err,omitempty"`
	Stats  EventStats `json:"stats"`
}

// wireEventOf flattens an Event for the pipe.
func wireEventOf(ev Event) wireEvent {
	w := wireEvent{Stage: ev.Stage, Day: ev.Day, Window: ev.Window, Source: ev.Source, Stats: ev.Stats}
	if ev.Err != nil {
		w.Err = ev.Err.Error()
	}
	return w
}

// eventFromWire reconstructs an Event; Cell is the coordinator's to set.
func eventFromWire(w wireEvent) Event {
	ev := Event{Stage: w.Stage, Cell: -1, Day: w.Day, Window: w.Window, Source: w.Source, Stats: w.Stats}
	if w.Err != "" {
		ev.Err = errors.New(w.Err)
	}
	return ev
}

// wireCellResult is a cell job's result payload: exactly the CellSummary
// matrix aggregation reads. ASes carries the cell world's complete AS
// metadata table — not just the identified ASNs — because the aggregate
// resolves censor names against the first cell that knows an AS, and that
// lookup must see the same table a full in-process Pipeline would.
type wireCellResult struct {
	CNFs          int                       `json:"cnfs"`
	UniqueCNFs    int                       `json:"unique_cnfs"`
	Identified    map[ASN]*IdentifiedCensor `json:"identified,omitempty"`
	LeakASes      int                       `json:"leak_ases"`
	LeakCountries int                       `json:"leak_countries"`
	ASes          []ASInfo                  `json:"ases,omitempty"`
}

// summaryFromWire converts the pipe shape into the aggregation shape.
func summaryFromWire(w *wireCellResult) *CellSummary {
	s := &CellSummary{
		CNFs: w.CNFs, UniqueCNFs: w.UniqueCNFs,
		Identified:    w.Identified,
		LeakASes:      w.LeakASes,
		LeakCountries: w.LeakCountries,
	}
	if s.Identified == nil {
		s.Identified = map[ASN]*IdentifiedCensor{}
	}
	s.ASes = make(map[ASN]ASInfo, len(w.ASes))
	for _, as := range w.ASes {
		s.ASes[as.ASN] = as
	}
	return s
}

// MaybeWorker turns the current process into a distributed worker when it
// was spawned as one — a coordinator's default worker command re-executes
// its own binary with a magic first argument — and never returns in that
// case. Call it first thing in main, before flag parsing, in any binary
// that runs distributed experiments without WithWorkerBinary; it is a
// no-op in a normal invocation. cmd/churnlab does exactly this.
func MaybeWorker() {
	if len(os.Args) < 2 || os.Args[1] != workerArg {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churntomo worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker loop over the given pipe pair: read job
// envelopes, execute them with the same Experiment cell runner an
// in-process run uses, and stream back events and typed results, until the
// coordinator closes the pipe. It is the whole main of a dedicated worker
// binary (cmd/churnworker) and the engine behind MaybeWorker.
func ServeWorker(r io.Reader, w io.Writer) error {
	return distrib.Serve(r, w, runWorkerJob)
}

// runWorkerJob executes one envelope. A returned error travels back as a
// fail frame — a deterministic job failure, distinct from a crash.
func runWorkerJob(_ int, payload []byte, emit func([]byte)) ([]byte, error) {
	var env jobEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("churntomo: worker: decoding job envelope: %w", err)
	}
	if env.MemoryMB > 0 {
		debug.SetMemoryLimit(int64(env.MemoryMB) << 20)
	}
	switch env.Kind {
	case jobKindCell:
		return runWorkerCell(&env, emit)
	case jobKindDays:
		return runWorkerDays(&env)
	default:
		return nil, fmt.Errorf("churntomo: worker: unknown job kind %q", env.Kind)
	}
}

// runWorkerCell runs one whole matrix cell — the same runCell path an
// in-process matrix uses — and condenses the pipeline into the summary the
// coordinator merges. Cell events stream back live through emit.
func runWorkerCell(env *jobEnvelope, emit func([]byte)) ([]byte, error) {
	cfg := env.Config
	cfg.Progress = nil
	we := &Experiment{base: cfg, minCNFs: env.MinCNFs}
	switch {
	case env.SourcePath != "":
		we.source = &FileSource{Path: env.SourcePath}
	case len(env.SourceData) > 0:
		f, err := dataset.Decode(bytes.NewReader(env.SourceData))
		if err != nil {
			return nil, fmt.Errorf("churntomo: worker: decoding inline dataset: %w", err)
		}
		we.source = fileToPublic(f)
	}
	we.observers = []Observer{func(ev Event) {
		b, err := json.Marshal(wireEventOf(ev))
		if err != nil {
			return // an unmarshalable event is progress lost, not a failed cell
		}
		emit(b)
	}}
	//churnvet:ok ctxflow -- worker subprocess root: cancellation reaches a worker as a process kill from the coordinator's CommandContext, not as a ctx
	cr, err := we.runCell(context.Background(), cfg, -1)
	if err != nil {
		return nil, err
	}
	p := cr.pipe
	out := wireCellResult{CNFs: len(p.Outcomes), Identified: p.Identified}
	for _, o := range p.Outcomes {
		if o.Class == sat.Unique {
			out.UniqueCNFs++
		}
	}
	if p.Leakage != nil {
		out.LeakASes = p.Leakage.LeakToOtherASes()
		out.LeakCountries = p.Leakage.LeakToOtherCountries()
	}
	if p.Graph != nil {
		for i := range p.Graph.ASes {
			as := &p.Graph.ASes[i]
			out.ASes = append(out.ASes, ASInfo{
				ASN: as.ASN, Name: as.Name, Country: as.Country, Class: as.Class.String(),
			})
		}
	}
	return json.Marshal(&out)
}

// runWorkerDays measures the [DayLo, DayHi) slice of one cell's schedule
// and returns it as a format-v1 dataset whose day batches outside the
// range are empty. Because a day's randomness depends only on (seed, day
// index), the slice is bit-identical to the same days of a full
// single-process run, whichever worker measures it.
func runWorkerDays(env *jobEnvelope) ([]byte, error) {
	cfg := env.Config
	cfg.Progress = nil
	spec, err := resolveScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = spec.Name
	// The substrate build is silent: the coordinator built the same world
	// itself and already narrated those stages.
	//churnvet:ok ctxflow -- worker subprocess root: cancellation reaches a worker as a process kill from the coordinator's CommandContext, not as a ctx
	p, err := prepareSpecCtx(context.Background(), cfg, spec, func(Event) {})
	if err != nil {
		return nil, err
	}
	//churnvet:ok ctxflow -- worker subprocess root: cancellation reaches a worker as a process kill from the coordinator's CommandContext, not as a ctx
	shards, err := iclab.RunDaysCtx(context.Background(), p.Scenario, p.Config.platformConfig(), env.DayLo, env.DayHi)
	if err != nil {
		return nil, err
	}
	f := &dataset.File{Header: headerOf(p), Days: make([][]iclab.Record, p.Scenario.Days())}
	copy(f.Days[env.DayLo:env.DayHi], shards)
	var buf bytes.Buffer
	if err := dataset.Encode(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
